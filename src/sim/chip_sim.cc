#include "sim/chip_sim.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "common/des.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

namespace rapid {

namespace {

/**
 * Per-core program interpreter for the chip-level run; mirrors the
 * corelet simulator's processor but posts/waits tokens on a per-core
 * board fed by MNI completions.
 */
class CoreThread
{
  public:
    CoreThread(EventQueue &eq, const LayerProgram &prog,
               Tick lrf_load_cycles)
        : eq_(eq), tokens_(eq), prog_(prog),
          lrfLoadCycles_(lrf_load_cycles)
    {
    }

    void
    start()
    {
        eq_.scheduleIn(0, [this] { step(); });
    }

    /** MNI completion for this core: operands staged, wake waiters. */
    void tokenArrived(unsigned token) { tokens_.post(token); }

    bool done() const { return done_; }
    const CoreRunStats &stats() const { return stats_; }

  private:
    void
    step()
    {
        if (pc_ >= prog_.mpe_program.size()) {
            finish();
            return;
        }
        const MpeInstruction &inst = prog_.mpe_program[pc_++];
        switch (inst.op) {
          case Opcode::SetPrec:
          case Opcode::SetBias:
          case Opcode::Nop:
          case Opcode::TokPost:
          case Opcode::MovSouth:
            issue(1);
            return;
          case Opcode::TokWait: {
            const Tick begin = eq_.now();
            tokens_.wait(inst.imm, [this, begin] {
                stats_.stall_cycles += eq_.now() - begin;
                step();
            });
            return;
          }
          case Opcode::LrfLoad:
            ++stats_.tiles_loaded;
            issue(lrfLoadCycles_);
            return;
          case Opcode::Fmma:
            stats_.fmma_issued += inst.imm;
            issue(std::max<Tick>(1, inst.imm));
            return;
          case Opcode::Halt:
            finish();
            return;
        }
        rapid_panic("unhandled opcode in chip sim");
    }

    void
    issue(Tick cycles)
    {
        eq_.scheduleIn(cycles, [this] { step(); });
    }

    void
    finish()
    {
        done_ = true;
        stats_.finish_cycle = eq_.now();
    }

    EventQueue &eq_;
    TokenBoard tokens_;
    const LayerProgram &prog_;
    Tick lrfLoadCycles_;
    size_t pc_ = 0;
    bool done_ = false;
    CoreRunStats stats_;
};

} // namespace

ChipSim::ChipSim(unsigned num_cores, bool multicast, MniConfig mni_cfg)
    : numCores_(num_cores), multicast_(multicast), mniCfg_(mni_cfg)
{
    rapid_assert(num_cores >= 1, "need at least one core");
}

ChipRunStats
ChipSim::run(const LayerProgram &prog, Tick lrf_load_cycles)
{
    RingConfig ring_cfg;
    ring_cfg.num_nodes = numCores_ + 1; // + memory interface
    MniFabric mni(ring_cfg, mniCfg_);

    EventQueue eq;
    std::vector<std::unique_ptr<CoreThread>> cores;
    for (unsigned c = 0; c < numCores_; ++c) {
        cores.push_back(std::make_unique<CoreThread>(
            eq, prog, lrf_load_cycles));
        cores.back()->start();
    }

    // Per-core sequencer cursors over the planned transfers: each
    // core requests its tiles in order, stalling at the MNI-LU's
    // outstanding limit. Under multicast every core uses the shared
    // tile tag; the unicast baseline privatizes tags per core.
    std::vector<size_t> next_transfer(numCores_, 0);
    auto tag_for = [&](unsigned core, size_t idx) -> uint64_t {
        const uint64_t base = prog.transfers[idx].tag;
        return multicast_ ? base : base * numCores_ + core + 1000000;
    };

    size_t completions_seen = 0;
    Tick tick = 0;
    const Tick limit = 500000000;
    auto all_done = [&] {
        for (const auto &c : cores)
            if (!c->done())
                return false;
        return true;
    };

    while (!all_done()) {
        rapid_assert(++tick <= limit, "chip sim failed to converge");
        // Sequencers try to push their next requests.
        for (unsigned c = 0; c < numCores_; ++c) {
            while (next_transfer[c] < prog.transfers.size()) {
                const auto &tr = prog.transfers[next_transfer[c]];
                const unsigned consumers =
                    multicast_ ? numCores_ : 1;
                if (!mni.recv(c, mni.memoryNode(),
                              tag_for(c, next_transfer[c]), tr.bytes,
                              tr.ready_token, consumers))
                    break; // load queue full; retry next cycle
                ++next_transfer[c];
            }
        }
        mni.step();
        // Dispatch newly landed blocks to their cores' token boards.
        const auto &done = mni.completions();
        for (; completions_seen < done.size(); ++completions_seen) {
            const MniCompletion &comp = done[completions_seen];
            // local_addr carries the ready token (set above).
            cores[comp.consumer]->tokenArrived(
                unsigned(comp.local_addr));
        }
        eq.run(tick);
    }

    ChipRunStats stats;
    stats.makespan = tick;
    stats.ring_flit_hops = mni.ring().flitHopsMoved();
    for (const auto &c : cores)
        stats.cores.push_back(c->stats());
    return stats;
}

std::vector<ChipRunStats>
ChipSim::runBatch(const std::vector<LayerProgram> &progs,
                  Tick lrf_load_cycles) const
{
    // One DES domain per batch entry; each runs its whole chip
    // simulation as a single event at t=0 (the chip's own EventQueue
    // is the cycle-accurate micro-engine inside the domain). The
    // domains are independent — no channels — so the engine executes
    // the batch as one fully parallel window on the shared pool.
    DesEngine engine;
    std::vector<ChipRunStats> out(progs.size());
    for (size_t i = 0; i < progs.size(); ++i) {
        const DomainId id =
            engine.addDomain("chip" + std::to_string(i));
        engine.domain(id).schedule(0, 0, [this, &out, &progs, i,
                                          lrf_load_cycles] {
            ChipSim sim(numCores_, multicast_, mniCfg_);
            out[i] = sim.run(progs[i], lrf_load_cycles);
        });
    }
    engine.run();
    return out;
}

} // namespace rapid
