#include "sim/systolic.hh"

#include <algorithm>
#include <cmath>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "precision/mpe_datapath.hh"

namespace rapid {

SystolicArraySim::SystolicArraySim(const CoreletConfig &corelet,
                                   Precision precision, int fwd_bias)
    : corelet_(corelet), precision_(precision), fwdBias_(fwd_bias)
{
    rapid_assert(precision == Precision::FP16 ||
                 precision == Precision::HFP8,
                 "systolic sim models the FPU pipeline (FP16/HFP8)");
}

int64_t
SystolicArraySim::reductionCap() const
{
    const int packing = precision_ == Precision::HFP8 ? 2 : 1;
    return int64_t(corelet_.mpe_rows) * packing;
}

int64_t
SystolicArraySim::outputCap() const
{
    return int64_t(corelet_.mpe_cols) * corelet_.mpe.fpu_simd_lanes;
}

std::vector<MpeInstruction>
SystolicArraySim::buildTileProgram(int64_t stream_len) const
{
    std::vector<MpeInstruction> prog;
    MpeInstruction set_prec;
    set_prec.op = Opcode::SetPrec;
    set_prec.prec = precision_;
    prog.push_back(set_prec);
    if (precision_ == Precision::HFP8) {
        MpeInstruction set_bias;
        set_bias.op = Opcode::SetBias;
        set_bias.imm = uint16_t(fwdBias_);
        prog.push_back(set_bias);
    }
    // Block-load the stationary weights into LRF register 0.
    prog.push_back(makeLrfLoad(0));
    // Streamed FMMA: operand A from the west link, operand B from the
    // LRF, accumulator continues the south chain.
    MpeInstruction fmma =
        makeFmma(precision_, OperandSel::West, OperandSel::Lrf, 1, 0);
    fmma.imm = uint16_t(std::min<int64_t>(stream_len, 0xffff));
    prog.push_back(fmma);
    prog.push_back(makeMovSouth(1));
    prog.push_back(makeHalt());

    // The hardware consumes encoded words; round-trip through the
    // encoder so the simulation exercises the ISA format.
    std::vector<MpeInstruction> decoded;
    decoded.reserve(prog.size());
    for (const auto &inst : prog)
        decoded.push_back(MpeInstruction::decode(inst.encode()));
    return decoded;
}

SystolicResult
SystolicArraySim::gemm(const Tensor &a, const Tensor &b, Fp8Kind a_kind,
                       Fp8Kind b_kind)
{
    rapid_assert(a.rank() == 2 && b.rank() == 2, "gemm needs matrices");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    rapid_assert(b.dim(0) == k, "gemm inner dimension mismatch");

    const int64_t red_cap = reductionCap();
    const int64_t out_cap = outputCap();
    rapid_dassert(red_cap > 0 && out_cap > 0,
                  "degenerate corelet: reduction cap ", red_cap,
                  ", output cap ", out_cap);
    const int64_t pipe_fill = corelet_.mpe_rows + 3; // skew + adder

    MpeDatapath dp(fwdBias_);
    uint64_t fault_item = 0;
    SystolicResult res;
    res.c = Tensor({m, n});
    res.program = buildTileProgram(m);

    const double wt_bytes_per_elem = operandBytes(precision_);
    const int64_t l1_bw = corelet_.l0_bw_bytes_per_cycle * 2;

    for (int64_t n0 = 0; n0 < n; n0 += out_cap) {
        const int64_t n_hi = std::min(n, n0 + out_cap);
        for (int64_t k0 = 0; k0 < k; k0 += red_cap) {
            const int64_t k_hi = std::min(k, k0 + red_cap);
            rapid_dassert(k_hi - k0 <= reductionCap(),
                          "tile reduction depth ", k_hi - k0,
                          " exceeds the accumulation chain cap");

            // Block-load: the padded tile streams from L1 into the
            // LRFs before compute starts.
            const int64_t tile_elems = red_cap * out_cap;
            const uint64_t load_cycles = uint64_t(
                divCeil(int64_t(tile_elems * wt_bytes_per_elem),
                        l1_bw));
            res.block_load_cycles += load_cycles;
            res.cycles += load_cycles;

            // Streaming phase: one position per cycle plus the skew
            // fill and the column drain.
            res.cycles += uint64_t(m) + pipe_fill;

            // Numerics: each output's accumulation chain continues
            // from the previous tile's value (psums enter north).
            for (int64_t mi = 0; mi < m; ++mi) {
                for (int64_t ni = n0; ni < n_hi; ++ni) {
                    float acc = res.c.at(mi, ni);
                    for (int64_t ki = k0; ki < k_hi; ++ki) {
                        if (precision_ == Precision::HFP8) {
                            acc = dp.hfp8Fma(a.at(mi, ki), a_kind,
                                             b.at(ki, ni), b_kind, acc);
                        } else {
                            acc = dp.fp16Fma(
                                dlfloat16().quantize(a.at(mi, ki)),
                                dlfloat16().quantize(b.at(ki, ni)),
                                acc);
                        }
                    }
                    // Fault site: the accumulator value leaving the
                    // array south. One injection item per output per
                    // tile pass, indexed by a monotone counter so the
                    // fault pattern only depends on the config seed.
                    if (injector_ &&
                        injector_->active(FaultSite::MacOutput)) {
                        acc = injectMacFault(acc, fault_item++,
                                             res.faults);
                    }
                    res.c.at(mi, ni) = acc;
                }
            }
        }
    }
    // Detected-but-uncorrected faults re-issue their tile pass; the
    // replay cost lands on the cycle count (zero when fault-free).
    res.cycles += uint64_t(std::llround(res.faults.retry_cycles));
    res.fmas = dp.fmaCount();
    res.zero_gated = dp.zeroGatedCount();
    return res;
}

float
SystolicArraySim::injectMacFault(float acc, uint64_t item,
                                 FaultStats &stats) const
{
    ++stats.sampled;
    Rng rng = injector_->stream(FaultSite::MacOutput, item);
    if (!injector_->eventDraw(rng))
        return acc;
    ++stats.injected;
    const FaultOutcome hit = injector_->resolveProtection(
        FaultSite::MacOutput, rng, stats);
    if (hit != FaultOutcome::Silent)
        return acc; // restored: corrected in place or tile re-issued
    const uint32_t word = dlfloat16().encode(acc);
    const float clean = dlfloat16().decode(word);
    const float bad = dlfloat16().decode(
        injector_->flipOneBit(rng, dlfloat16().storageBits(), word));
    if (bad == clean) {
        ++stats.masked; // e.g. a sign flip on zero
        return acc;
    }
    ++stats.sdc;
    return bad;
}

} // namespace rapid
