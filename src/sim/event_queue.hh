/**
 * @file
 * A minimal discrete-event simulation kernel in the style of gem5's
 * event queue: events are callbacks scheduled at integer ticks and
 * executed in (tick, insertion-order) order.
 */

#ifndef RAPID_SIM_EVENT_QUEUE_HH
#define RAPID_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/logging.hh"

namespace rapid {

using Tick = uint64_t;

/** Tick-ordered event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void
    schedule(Tick when, Callback fn)
    {
        rapid_assert(when >= now_, "scheduling event in the past: ",
                     when, " < ", now_);
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    /** Schedule @p fn @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Execute events until the queue empties or @p limit is hit. */
    void
    run(Tick limit = UINT64_MAX)
    {
        while (!heap_.empty() && heap_.top().when <= limit) {
            Entry e = heap_.top();
            heap_.pop();
            rapid_dassert(e.when >= now_,
                          "event queue time went backwards: ", e.when,
                          " < ", now_);
            now_ = e.when;
            e.fn();
        }
        if (heap_.empty() && now_ < limit)
            now_ = now_; // time only advances with events
    }

    Tick now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        Callback fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
};

/**
 * Token-based synchronization board (Section II-A): programmable
 * units post and wait on counting tokens to enforce producer/consumer
 * ordering between decoupled data-sequencing and data-processing
 * programs.
 */
class TokenBoard
{
  public:
    explicit TokenBoard(EventQueue &eq) : eq_(eq) {}

    /** Post one token with id @p token, waking blocked waiters. */
    void
    post(unsigned token)
    {
        auto &st = state(token);
        if (!st.waiters.empty()) {
            auto fn = std::move(st.waiters.front());
            st.waiters.erase(st.waiters.begin());
            eq_.scheduleIn(0, std::move(fn));
        } else {
            ++st.count;
        }
    }

    /**
     * Run @p fn once a token with id @p token is available, consuming
     * it. Executes immediately (this tick) if one is banked.
     */
    void
    wait(unsigned token, EventQueue::Callback fn)
    {
        auto &st = state(token);
        if (st.count > 0) {
            --st.count;
            eq_.scheduleIn(0, std::move(fn));
        } else {
            st.waiters.push_back(std::move(fn));
        }
    }

    unsigned
    available(unsigned token) const
    {
        auto it = tokens_.find(token);
        return it == tokens_.end() ? 0 : it->second.count;
    }

  private:
    struct State
    {
        unsigned count = 0;
        std::vector<EventQueue::Callback> waiters;
    };

    State &
    state(unsigned token)
    {
        return tokens_[token];
    }

    EventQueue &eq_;
    std::map<unsigned, State> tokens_;
};

} // namespace rapid

#endif // RAPID_SIM_EVENT_QUEUE_HH
