/**
 * @file
 * Chip-level integration simulation: every core runs the same
 * compiled layer program over its position slice (the compiler's
 * position split), while the weight blocks stream from the external
 * memory node over the cycle-level ring through the MNI. Each core's
 * MNI-LU posts a Recv per tile with a shared tag, the memory
 * interface aggregates the requests, and one multicast per tile
 * serves every core (Figure 8) — so the experiment quantifies what
 * request aggregation saves at chip scope, with the processors'
 * token stalls exposing any delivery latency the multicast cannot
 * hide.
 */

#ifndef RAPID_SIM_CHIP_SIM_HH
#define RAPID_SIM_CHIP_SIM_HH

#include <vector>

#include "compiler/codegen.hh"
#include "interconnect/mni.hh"
#include "sim/event_queue.hh"

namespace rapid {

/** Per-core outcome of a chip-level run. */
struct CoreRunStats
{
    Tick finish_cycle = 0;
    Tick stall_cycles = 0;
    uint64_t fmma_issued = 0;
    uint64_t tiles_loaded = 0;
};

/** Whole-chip outcome. */
struct ChipRunStats
{
    Tick makespan = 0;
    uint64_t ring_flit_hops = 0;
    std::vector<CoreRunStats> cores;

    Tick
    maxStall() const
    {
        Tick m = 0;
        for (const auto &c : cores)
            m = std::max(m, c.stall_cycles);
        return m;
    }
};

/** Chip-level simulator: N cores + memory node on the ring. */
class ChipSim
{
  public:
    /**
     * @param num_cores Ring carries num_cores + 1 nodes (memory last).
     * @param multicast When true, cores share per-tile tags so the
     *        memory interface aggregates and multicasts; when false,
     *        every core uses private tags (N unicasts per tile), the
     *        baseline the MNI design improves on.
     */
    explicit ChipSim(unsigned num_cores = 4, bool multicast = true,
                     MniConfig mni_cfg = {});

    /**
     * Run @p prog on every core; weight tiles stream from memory.
     * @p lrf_load_cycles is the per-tile LRF hand-off cost.
     */
    ChipRunStats run(const LayerProgram &prog,
                     Tick lrf_load_cycles = 8);

    /**
     * Run a batch of independent layer programs, one full chip
     * simulation each, in parallel on the shared ThreadPool.
     *
     * Within one simulated cycle the cores all share the MNI fabric
     * and the memory node, so the safe (and deterministic) batch axis
     * is across simulations, not across cores inside one: each batch
     * entry becomes a domain of one rapid::DesEngine (its gem5-style
     * per-chip EventQueue stays the cycle-level micro-engine inside
     * the domain), domains share no mutable state, and results gather
     * by index. Output is bit-identical to calling run() in a loop.
     */
    std::vector<ChipRunStats> runBatch(
        const std::vector<LayerProgram> &progs,
        Tick lrf_load_cycles = 8) const;

  private:
    unsigned numCores_;
    bool multicast_;
    MniConfig mniCfg_;
};

} // namespace rapid

#endif // RAPID_SIM_CHIP_SIM_HH
