/**
 * @file
 * Cycle-level simulator of one corelet's systolic MPE array executing
 * a generated MPE ISA program (Figure 4). Used to validate the
 * analytical dataflow model's cycle counts and to demonstrate that
 * the ISA + bit-accurate datapath reproduce the functional executors'
 * numerics exactly.
 *
 * The simulated dataflow is the paper's weight-stationary GEMM
 * mapping: the reduction dimension spans the rows (scaled by the
 * sub-SIMD packing of the precision), outputs span columns x SIMD,
 * weights are block-loaded into the LRFs, inputs stream west-to-east
 * with systolic skew, and partial sums flow south through the
 * column adder chain, entering at the north with the previous tile's
 * partial value so the accumulation chain is continuous.
 */

#ifndef RAPID_SIM_SYSTOLIC_HH
#define RAPID_SIM_SYSTOLIC_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "arch/isa.hh"
#include "common/fault.hh"
#include "tensor/tensor.hh"

namespace rapid {

/** Result of a simulated GEMM. */
struct SystolicResult
{
    Tensor c;              ///< DLFloat16-valued output (M x N)
    uint64_t cycles = 0;   ///< simulated corelet cycles
    uint64_t block_load_cycles = 0;
    uint64_t fmas = 0;     ///< FMA slots issued
    uint64_t zero_gated = 0;
    FaultStats faults;     ///< MacOutput-site injection outcome
    std::vector<MpeInstruction> program; ///< the executed inner loop
};

/** One corelet's MPE array, cycle-level. */
class SystolicArraySim
{
  public:
    /**
     * @param corelet Array geometry (8x8 by default).
     * @param precision FP16 or HFP8 (the FPU pipeline modes).
     * @param fwd_bias Programmable FP8 (1,4,3) exponent bias.
     */
    SystolicArraySim(const CoreletConfig &corelet, Precision precision,
                     int fwd_bias = 4);

    /**
     * Simulate C = A (MxK) x B (KxN). In HFP8 mode @p a_kind /
     * @p b_kind select each operand tensor's FP8 flavour.
     */
    SystolicResult gemm(const Tensor &a, const Tensor &b,
                        Fp8Kind a_kind = Fp8Kind::Forward,
                        Fp8Kind b_kind = Fp8Kind::Forward);

    /** Reduction capacity (rows x sub-SIMD packing). */
    int64_t reductionCap() const;

    /** Output capacity (cols x SIMD lanes). */
    int64_t outputCap() const;

    /**
     * Build the data-processing program for one tile pass: set
     * precision/bias, block-load the LRF, stream FMMAs, drain south.
     * Exposed so tests can check the encoding round-trips.
     */
    std::vector<MpeInstruction> buildTileProgram(int64_t stream_len)
        const;

    /**
     * Attach a fault injector (MacOutput site); nullptr detaches.
     * Non-owning. Each accumulator value leaving the array south is
     * one injection item: a detected fault re-issues the value's tile
     * pass (retry cycles added to the result), an undetected one
     * flips a bit of the DLFloat16 output encoding.
     */
    void setFaultInjector(const FaultInjector *injector)
    {
        injector_ = injector;
    }

  private:
    /** Resolve one MacOutput injection item against @p acc. */
    float injectMacFault(float acc, uint64_t item,
                         FaultStats &stats) const;

    CoreletConfig corelet_;
    Precision precision_;
    int fwdBias_;
    const FaultInjector *injector_ = nullptr;
};

} // namespace rapid

#endif // RAPID_SIM_SYSTOLIC_HH
