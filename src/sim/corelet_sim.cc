#include "sim/corelet_sim.hh"

#include <memory>

#include "common/logging.hh"

namespace rapid {

CoreletSim::CoreletSim(double l1_bytes_per_cycle, Tick lrf_load_cycles)
    : l1BytesPerCycle_(l1_bytes_per_cycle),
      lrfLoadCycles_(lrf_load_cycles)
{
    rapid_assert(l1_bytes_per_cycle > 0, "non-positive L1 bandwidth");
}

namespace {

/** Shared mutable state of one simulation run. */
struct RunState
{
    EventQueue eq;
    TokenBoard tokens{eq};
    CoreletRunStats stats;
    Tick processor_start = 0;
    Tick wait_begin = 0;
};

/**
 * The data-processing thread: interprets the MPE program one
 * instruction at a time, re-scheduling itself after each issue and
 * parking on the token board at TokWait.
 */
class Processor
{
  public:
    Processor(RunState &st, const LayerProgram &prog,
              Tick lrf_load_cycles)
        : st_(st), prog_(prog), lrfLoadCycles_(lrf_load_cycles)
    {
    }

    void
    start()
    {
        st_.processor_start = st_.eq.now();
        st_.eq.scheduleIn(0, [this] { step(); });
    }

    bool done() const { return done_; }

  private:
    void
    step()
    {
        if (pc_ >= prog_.mpe_program.size()) {
            finish();
            return;
        }
        const MpeInstruction &inst = prog_.mpe_program[pc_++];
        switch (inst.op) {
          case Opcode::SetPrec:
          case Opcode::SetBias:
          case Opcode::Nop:
            issue(1);
            return;
          case Opcode::TokWait:
            st_.wait_begin = st_.eq.now();
            st_.tokens.wait(inst.imm, [this] {
                st_.stats.stall_cycles +=
                    st_.eq.now() - st_.wait_begin;
                step();
            });
            return;
          case Opcode::TokPost:
            st_.tokens.post(inst.imm);
            issue(1);
            return;
          case Opcode::LrfLoad:
            ++st_.stats.tiles_loaded;
            issue(lrfLoadCycles_);
            return;
          case Opcode::Fmma:
            st_.stats.fmma_issued += inst.imm;
            issue(std::max<Tick>(1, inst.imm));
            return;
          case Opcode::MovSouth:
            issue(1);
            return;
          case Opcode::Halt:
            finish();
            return;
        }
        rapid_panic("unhandled opcode in corelet sim");
    }

    void
    issue(Tick cycles)
    {
        st_.stats.processor_cycles += cycles;
        st_.eq.scheduleIn(cycles, [this] { step(); });
    }

    void
    finish()
    {
        done_ = true;
        st_.stats.total_cycles = st_.eq.now();
    }

    RunState &st_;
    const LayerProgram &prog_;
    Tick lrfLoadCycles_;
    size_t pc_ = 0;
    bool done_ = false;
};

} // namespace

CoreletRunStats
CoreletSim::run(const LayerProgram &prog)
{
    RunState st;

    // Data-sequencing thread: stream the staged transfers back to
    // back through the L1 port, posting each block's ready token the
    // cycle its tail lands. It naturally runs ahead of the processor.
    Tick seq_time = 0;
    uint64_t fault_item = 0;
    for (const auto &tr : prog.transfers) {
        const Tick cycles = std::max<Tick>(
            1, Tick((double(tr.bytes) + l1BytesPerCycle_ - 1) /
                    l1BytesPerCycle_));
        seq_time += cycles;
        if (injector_ && injector_->active(FaultSite::Scratchpad)) {
            // One injection item per staged block. A detected fault
            // re-streams the block before its token posts; an
            // undetected one silently stages corrupt data.
            const FaultOutcome hit = injector_->inject(
                FaultSite::Scratchpad, fault_item++, st.stats.faults);
            if (hit == FaultOutcome::Detected)
                seq_time += cycles;
            else if (hit == FaultOutcome::Silent)
                ++st.stats.faults.sdc;
        }
        const unsigned token = tr.ready_token;
        st.eq.schedule(seq_time, [&st, token] {
            st.tokens.post(token);
        });
    }
    st.stats.sequencer_cycles = seq_time;

    Processor proc(st, prog, lrfLoadCycles_);
    proc.start();
    st.eq.run();
    rapid_assert(proc.done(),
                 "corelet program deadlocked: processor blocked on a "
                 "token the sequencer never posts");
    return st.stats;
}

} // namespace rapid
