#include "interconnect/ring.hh"

#include <algorithm>

#include "common/error.hh"

namespace rapid {

void
validateRingConfig(const RingConfig &cfg)
{
    RAPID_CHECK_CONFIG(cfg.num_nodes >= 2,
                       "ring needs >= 2 nodes, got ", cfg.num_nodes);
    RAPID_CHECK_CONFIG(cfg.bytes_per_flit >= 1,
                       "ring link width must be >= 1 byte per flit");
}

RingNetwork::RingNetwork(const RingConfig &cfg) : cfg_(cfg)
{
    validateRingConfig(cfg);
    cw_.pipes.resize(cfg.num_nodes);
    ccw_.pipes.resize(cfg.num_nodes);
}

unsigned
RingNetwork::hopDistance(unsigned src, unsigned dst, RingDir dir) const
{
    const unsigned n = cfg_.num_nodes;
    rapid_assert(src < n && dst < n, "ring node out of range");
    if (dir == RingDir::Clockwise)
        return (dst + n - src) % n;
    return (src + n - dst) % n;
}

RingDir
RingNetwork::chooseDirection(unsigned src,
                             const std::vector<unsigned> &dsts) const
{
    unsigned max_cw = 0, max_ccw = 0;
    for (unsigned d : dsts) {
        max_cw = std::max(max_cw,
                          hopDistance(src, d, RingDir::Clockwise));
        max_ccw = std::max(
            max_ccw, hopDistance(src, d, RingDir::CounterClockwise));
    }
    return max_cw <= max_ccw ? RingDir::Clockwise
                             : RingDir::CounterClockwise;
}

size_t
RingNetwork::send(unsigned src, std::vector<unsigned> dsts,
                  uint64_t bytes, uint64_t tag)
{
    rapid_assert(!dsts.empty(), "message without destinations");
    rapid_assert(src < cfg_.num_nodes, "bad source node");
    for (unsigned d : dsts)
        rapid_assert(d < cfg_.num_nodes && d != src,
                     "bad destination node ", d);

    RingMessage msg;
    msg.src = src;
    msg.dsts = std::move(dsts);
    msg.bytes = bytes;
    msg.tag = tag;
    msg.issue_cycle = cycle_;
    const size_t id = messages_.size();
    messages_.push_back(std::move(msg));
    pending_tails_.push_back(unsigned(messages_[id].dsts.size()));

    InFlight fl;
    fl.id = id;
    fl.dir = chooseDirection(src, messages_[id].dsts);
    fl.flits_total =
        std::max<uint64_t>(1, (bytes + cfg_.bytes_per_flit - 1) /
                                  cfg_.bytes_per_flit);
    for (unsigned d : messages_[id].dsts)
        fl.max_hops =
            std::max(fl.max_hops, hopDistance(src, d, fl.dir));
    rapid_dassert(fl.max_hops >= 1 && fl.max_hops < cfg_.num_nodes,
                  "multicast span ", fl.max_hops,
                  " outside the ring of ", cfg_.num_nodes, " nodes");
    inflight_.push_back(fl);
    const size_t fl_idx = inflight_.size() - 1;
    if (fl.dir == RingDir::Clockwise)
        cw_.queue.push_back(fl_idx);
    else
        ccw_.queue.push_back(fl_idx);
    return id;
}

void
RingNetwork::stepDirection(DirState &st, RingDir dir)
{
    const unsigned n = cfg_.num_nodes;

    // Phase 1: advance the head flit of every node one hop, based on
    // the pre-step queues so a flit moves at most once per cycle.
    std::vector<Flit> moved;
    std::vector<unsigned> from;
    moved.reserve(n);
    for (unsigned node = 0; node < n; ++node) {
        if (st.pipes[node].empty())
            continue;
        moved.push_back(st.pipes[node].front());
        from.push_back(node);
        st.pipes[node].pop_front();
    }
    for (size_t i = 0; i < moved.size(); ++i) {
        Flit f = moved[i];
        const unsigned node = from[i];
        if (injector_ && injector_->active(FaultSite::RingFlit)) {
            const FaultOutcome hit = injector_->inject(
                FaultSite::RingFlit, fault_items_++, fault_stats_);
            if (hit == FaultOutcome::Detected) {
                // Link-level retry: the hop is squashed and the flit
                // retransmits from the same node next cycle.
                st.pipes[node].push_front(f);
                continue;
            }
            if (hit == FaultOutcome::Silent) {
                ++fault_stats_.sdc;
                messages_[f.msg_id].corrupted = true;
            }
        }
        const unsigned next = (dir == RingDir::Clockwise)
                                  ? (node + 1) % n
                                  : (node + n - 1) % n;
        ++flit_hops_;
        --f.hops_left;
        RingMessage &m = messages_[f.msg_id];
        // Multicast delivery: the flit is copied to every destination
        // it passes and terminates at the furthest one.
        bool is_dst =
            std::find(m.dsts.begin(), m.dsts.end(), next) !=
            m.dsts.end();
        if (is_dst && f.tail && --pending_tails_[f.msg_id] == 0) {
            m.delivered = true;
            m.complete_cycle = cycle_ + 1;
        }
        if (f.hops_left > 0)
            st.pipes[next].push_back(f);
    }

    // Phase 2: inject one flit of the active message at its source.
    if (!st.busy && !st.queue.empty()) {
        st.active = st.queue.front();
        st.queue.pop_front();
        st.busy = true;
    }
    if (st.busy) {
        InFlight &fl = inflight_[st.active];
        RingMessage &m = messages_[fl.id];
        Flit f;
        f.msg_id = fl.id;
        f.hops_left = fl.max_hops;
        f.tail = (fl.flits_sent + 1 == fl.flits_total);
        st.pipes[m.src].push_back(f);
        if (++fl.flits_sent == fl.flits_total)
            st.busy = false;
    }
}

void
RingNetwork::step()
{
    stepDirection(cw_, RingDir::Clockwise);
    stepDirection(ccw_, RingDir::CounterClockwise);
    ++cycle_;
}

void
RingNetwork::drain(uint64_t max_cycles)
{
    uint64_t steps = 0;
    while (!allDelivered()) {
        step();
        rapid_assert(++steps <= max_cycles,
                     "ring failed to drain in ", max_cycles, " cycles");
    }
}

bool
RingNetwork::allDelivered() const
{
    for (const auto &m : messages_)
        if (!m.delivered)
            return false;
    return true;
}

const RingMessage &
RingNetwork::message(size_t id) const
{
    rapid_assert(id < messages_.size(), "bad message id ", id);
    return messages_[id];
}

} // namespace rapid
