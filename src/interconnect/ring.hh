/**
 * @file
 * Cycle-level model of the bi-directional ring interconnect
 * (Section III-E, Figure 9). Cores and the memory interface sit on a
 * clockwise and a counter-clockwise ring, each moving one
 * 128-byte flit per link per cycle. Messages are wormhole-routed in
 * the direction with the shortest lead distance and may be multicast:
 * a flit is copied to every destination it passes, so a multicast to
 * n cores costs one traversal instead of n unicasts.
 */

#ifndef RAPID_INTERCONNECT_RING_HH
#define RAPID_INTERCONNECT_RING_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/fault.hh"

namespace rapid {

/** Ring geometry and link width. */
struct RingConfig
{
    unsigned num_nodes = 5;        ///< cores + memory interface node
    unsigned bytes_per_flit = 128; ///< link width per cycle
};

/**
 * Throw rapid::Error (InvalidConfig) on a degenerate ring: fewer than
 * two nodes or a zero-width link.
 */
void validateRingConfig(const RingConfig &cfg);

/** Direction of travel on the ring. */
enum class RingDir
{
    Clockwise,
    CounterClockwise,
};

/** A (possibly multicast) ring message. */
struct RingMessage
{
    unsigned src = 0;
    std::vector<unsigned> dsts;
    uint64_t bytes = 0;
    uint64_t tag = 0;

    uint64_t issue_cycle = 0;    ///< when handed to the ring
    uint64_t complete_cycle = 0; ///< when the last dst got the tail
    bool delivered = false;
    /// A flit of this message took an undetected hit in transit; the
    /// payload the destinations received is silently corrupt.
    bool corrupted = false;
};

/**
 * Cycle-stepped bi-directional ring. Callers enqueue messages and
 * step the clock; delivered messages report their completion cycle.
 *
 * The model simulates individual flits, so it is meant for protocol
 * validation and latency/bandwidth studies at modest transfer sizes;
 * the analytical performance model uses closed-form ring bandwidth.
 */
class RingNetwork
{
  public:
    explicit RingNetwork(const RingConfig &cfg);

    const RingConfig &config() const { return cfg_; }

    /**
     * Enqueue a message. Returns an id used to query completion.
     * Destination list must be non-empty and exclude the source.
     */
    size_t send(unsigned src, std::vector<unsigned> dsts,
                uint64_t bytes, uint64_t tag = 0);

    /** Advance one ring cycle. */
    void step();

    /** Run until all queued messages are delivered (bounded). */
    void drain(uint64_t max_cycles = 100000000);

    bool allDelivered() const;
    uint64_t now() const { return cycle_; }

    const RingMessage &message(size_t id) const;

    /** Total flit-hops moved (traffic measure for multicast tests). */
    uint64_t flitHopsMoved() const { return flit_hops_; }

    /**
     * Attach a fault injector (RingFlit site); pass nullptr to detach.
     * Non-owning — the injector must outlive the network. Each flit
     * hop is one injection item; a detected fault squashes the hop and
     * retransmits the flit next cycle (link-level retry), while an
     * undetected fault marks the message corrupted.
     */
    void setFaultInjector(const FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** Fault campaign counters accumulated so far. */
    const FaultStats &faultStats() const { return fault_stats_; }

    /** Choose the direction minimizing the furthest hop distance. */
    RingDir chooseDirection(unsigned src,
                            const std::vector<unsigned> &dsts) const;

    /** Hop distance from @p src to @p dst travelling @p dir. */
    unsigned hopDistance(unsigned src, unsigned dst, RingDir dir) const;

  private:
    struct Flit
    {
        size_t msg_id;
        unsigned hops_left; ///< hops to the furthest destination
        bool tail;
    };

    struct InFlight
    {
        size_t id;
        RingDir dir;
        uint64_t flits_total;
        uint64_t flits_sent = 0;
        unsigned max_hops = 0;
    };

    /** Per-direction state: injection queue + node output pipes. */
    struct DirState
    {
        std::deque<size_t> queue; ///< in-flight indices awaiting inject
        bool busy = false;
        size_t active = 0;        ///< index into inflight_
        std::vector<std::deque<Flit>> pipes; ///< per-node output queue
    };

    void stepDirection(DirState &st, RingDir dir);

    RingConfig cfg_;
    uint64_t cycle_ = 0;
    uint64_t flit_hops_ = 0;
    const FaultInjector *injector_ = nullptr;
    uint64_t fault_items_ = 0; ///< monotone per-hop injection index
    FaultStats fault_stats_;
    std::vector<RingMessage> messages_;
    std::vector<unsigned> pending_tails_; ///< per message
    std::vector<InFlight> inflight_;
    DirState cw_;
    DirState ccw_;
};

} // namespace rapid

#endif // RAPID_INTERCONNECT_RING_HH
