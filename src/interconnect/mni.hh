/**
 * @file
 * Memory-Neighbor Interface model (Section III-E, Figure 8). Each
 * core's MNI has a programmable load unit (MNI-LU) and store unit
 * (MNI-SU):
 *
 *  - Consumers issue tagged Recv requests naming the producer and the
 *    number of participating consumers (steps 1-2 of Figure 8).
 *  - The producer's MNI-SU performs *request aggregation*: once every
 *    participating consumer's request has arrived and the producer's
 *    program has posted the matching Send, it dynamically builds the
 *    consumer list and posts one multicast data transfer (steps 3-7).
 *  - The MNI-LU tracks the local scratchpad address per tag in its
 *    load queue, so data returns may complete out of order; it stalls
 *    when its outstanding-request limit is reached.
 *
 * The external memory interface is modelled as a ring node whose
 * MNI-SU auto-posts Sends (memory is always ready), with the same
 * request-aggregation support so that shared data is fetched once and
 * multicast to all requesting cores.
 */

#ifndef RAPID_INTERCONNECT_MNI_HH
#define RAPID_INTERCONNECT_MNI_HH

#include <cstdint>
#include <map>
#include <vector>

#include "interconnect/ring.hh"

namespace rapid {

/** MNI sizing parameters. */
struct MniConfig
{
    unsigned max_outstanding_loads = 16; ///< per-core load queue depth
    uint64_t request_bytes = 32;         ///< Recv control message size
};

/** A completed tagged transfer as seen by one consumer. */
struct MniCompletion
{
    uint64_t tag = 0;
    unsigned consumer = 0;
    uint64_t local_addr = 0; ///< scratchpad address from the load queue
    uint64_t cycle = 0;
};

/**
 * Transaction-level MNI fabric: all cores' MNI units plus the memory
 * interface, exchanging control and data messages over the cycle-level
 * ring.
 */
class MniFabric
{
  public:
    /**
     * @param ring_cfg Ring geometry; node (num_nodes - 1) is the
     *                 external memory interface.
     * @param mni_cfg MNI sizing.
     */
    MniFabric(const RingConfig &ring_cfg, const MniConfig &mni_cfg);

    unsigned memoryNode() const { return ring_.config().num_nodes - 1; }

    /**
     * Consumer-side Recv: request @p bytes tagged @p tag from
     * @p producer, to be written at @p local_addr. @p n_consumers is
     * the multicast group size agreed on at compile time.
     *
     * @return false if the consumer's load queue is full (the MNI-LU
     *         program stalls and must retry after step()).
     */
    bool recv(unsigned consumer, unsigned producer, uint64_t tag,
              uint64_t bytes, uint64_t local_addr,
              unsigned n_consumers = 1);

    /**
     * Producer-side Send: the producer's program makes @p bytes of
     * data tagged @p tag available for @p n_consumers consumers.
     */
    void send(unsigned producer, uint64_t tag, uint64_t bytes,
              unsigned n_consumers);

    /** Advance one cycle (ring + MNI bookkeeping). */
    void step();

    /** Run until every posted transfer completed. */
    void drain(uint64_t max_cycles = 100000000);

    uint64_t now() const { return ring_.now(); }
    const std::vector<MniCompletion> &completions() const
    {
        return completions_;
    }

    /** Outstanding loads for @p consumer (for stall tests). */
    unsigned outstandingLoads(unsigned consumer) const;

    const RingNetwork &ring() const { return ring_; }

  private:
    /** Aggregation entry at a producer's MNI-SU. */
    struct PendingSend
    {
        uint64_t bytes = 0;
        unsigned expected = 0;
        bool send_posted = false;
        std::vector<unsigned> consumers;      ///< aggregated list
        std::vector<uint64_t> consumer_addrs; ///< matching local addrs
    };

    /** A control or data message in flight on the ring. */
    struct Tracked
    {
        enum class Kind { RecvRequest, Data } kind;
        size_t ring_id;
        unsigned producer;
        uint64_t tag;
        unsigned consumer = 0;       ///< for RecvRequest
        uint64_t local_addr = 0;     ///< for RecvRequest
        unsigned n_consumers = 1;    ///< for RecvRequest
        bool handled = false;
    };

    void maybeLaunchData(unsigned producer, uint64_t tag);
    void processDelivered();

    RingNetwork ring_;
    MniConfig cfg_;
    /// (producer, tag) -> aggregation state.
    std::map<std::pair<unsigned, uint64_t>, PendingSend> pending_;
    std::vector<Tracked> tracked_;
    std::vector<MniCompletion> completions_;
    std::vector<unsigned> outstanding_; ///< per consumer
    uint64_t open_transfers_ = 0;
};

} // namespace rapid

#endif // RAPID_INTERCONNECT_MNI_HH
