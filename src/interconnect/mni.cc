#include "interconnect/mni.hh"

#include <algorithm>

namespace rapid {

MniFabric::MniFabric(const RingConfig &ring_cfg, const MniConfig &mni_cfg)
    : ring_(ring_cfg), cfg_(mni_cfg),
      outstanding_(ring_cfg.num_nodes, 0)
{
}

unsigned
MniFabric::outstandingLoads(unsigned consumer) const
{
    rapid_assert(consumer < outstanding_.size(), "bad consumer node");
    return outstanding_[consumer];
}

bool
MniFabric::recv(unsigned consumer, unsigned producer, uint64_t tag,
                uint64_t bytes, uint64_t local_addr,
                unsigned n_consumers)
{
    rapid_assert(consumer != producer, "self transfers do not use MNI");
    if (outstanding_[consumer] >= cfg_.max_outstanding_loads)
        return false; // MNI-LU program stalls (Section III-E)
    ++outstanding_[consumer];
    ++open_transfers_;

    // The Recv control message travels to the producer on the ring.
    Tracked t;
    t.kind = Tracked::Kind::RecvRequest;
    t.producer = producer;
    t.tag = tag;
    t.consumer = consumer;
    t.local_addr = local_addr;
    t.n_consumers = n_consumers;
    t.ring_id = ring_.send(consumer, {producer}, cfg_.request_bytes,
                           tag);
    tracked_.push_back(t);

    auto &ps = pending_[{producer, tag}];
    ps.bytes = std::max(ps.bytes, bytes);
    ps.expected = n_consumers;
    return true;
}

void
MniFabric::send(unsigned producer, uint64_t tag, uint64_t bytes,
                unsigned n_consumers)
{
    auto &ps = pending_[{producer, tag}];
    ps.bytes = std::max(ps.bytes, bytes);
    ps.expected = n_consumers;
    ps.send_posted = true;
    maybeLaunchData(producer, tag);
}

void
MniFabric::maybeLaunchData(unsigned producer, uint64_t tag)
{
    auto it = pending_.find({producer, tag});
    if (it == pending_.end())
        return;
    PendingSend &ps = it->second;
    // Memory is always ready: its Send auto-posts on first request.
    if (producer == memoryNode())
        ps.send_posted = true;
    if (!ps.send_posted || ps.consumers.size() < ps.expected)
        return;

    // Request aggregation complete: post one multicast data transfer
    // with the dynamically built consumer list (Figure 8, steps 4-7).
    Tracked t;
    t.kind = Tracked::Kind::Data;
    t.producer = producer;
    t.tag = tag;
    t.ring_id = ring_.send(producer, ps.consumers, ps.bytes, tag);
    tracked_.push_back(t);
}

void
MniFabric::processDelivered()
{
    // Index loop: handlers can append to tracked_ (data launches).
    for (size_t ti = 0; ti < tracked_.size(); ++ti) {
        Tracked &t = tracked_[ti];
        if (t.handled || !ring_.message(t.ring_id).delivered)
            continue;
        t.handled = true;
        if (t.kind == Tracked::Kind::RecvRequest) {
            // Request arrived at the producer's MNI-SU: aggregate.
            auto &ps = pending_[{t.producer, t.tag}];
            ps.consumers.push_back(t.consumer);
            ps.consumer_addrs.push_back(t.local_addr);
            maybeLaunchData(t.producer, t.tag);
        } else {
            // Data landed at every consumer: retire the load-queue
            // entries, writing each consumer's tracked local address.
            auto &ps = pending_[{t.producer, t.tag}];
            for (size_t i = 0; i < ps.consumers.size(); ++i) {
                MniCompletion c;
                c.tag = t.tag;
                c.consumer = ps.consumers[i];
                c.local_addr = ps.consumer_addrs[i];
                c.cycle = ring_.now();
                completions_.push_back(c);
                rapid_assert(outstanding_[c.consumer] > 0,
                             "load queue underflow");
                --outstanding_[c.consumer];
                --open_transfers_;
            }
            pending_.erase({t.producer, t.tag});
        }
    }
}

void
MniFabric::step()
{
    ring_.step();
    processDelivered();
}

void
MniFabric::drain(uint64_t max_cycles)
{
    uint64_t steps = 0;
    while (open_transfers_ > 0) {
        step();
        rapid_assert(++steps <= max_cycles,
                     "MNI failed to drain in ", max_cycles, " cycles");
    }
}

} // namespace rapid
