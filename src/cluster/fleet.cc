#include "cluster/fleet.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "common/des.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "func/datasets.hh"
#include "resilience/checkpoint.hh"
#include "resilience/resilient_trainer.hh"
#include "serve/serve_domain.hh"
#include "workloads/networks.hh"

namespace rapid {

namespace {

/** One request offered to a failover target by the router. */
struct AdoptItem
{
    unsigned tenant = 0;
    int64_t when = 0; ///< planned arrival (clamped at injection)
    size_t origin_chip = 0;
    uint64_t origin_id = 0;
    int64_t origin_arrival_ns = 0;
    int attempts = 0; ///< failover hops consumed, this one included
};

/** One stranded request reported to the router by a halting chip. */
struct OrphanWire
{
    size_t origin_chip = 0;
    uint64_t origin_id = 0;
    unsigned tenant = 0;
    int64_t origin_arrival_ns = 0;
    int64_t local_arrival_ns = 0;
    int attempts = 0; ///< hops already consumed before the halt
    bool admitted = false;
};

struct FleetCell;

/** One chip of a cell: the serving core plus the failure, failover
 *  and training overlays. Event callbacks mutate only this host's
 *  state (cross-host effects travel through channels), which keeps
 *  every domain race-free by construction. */
struct ChipHost
{
    FleetCell &cell;
    size_t idx;
    DesDomain &dom;
    ServeDomainCore core;

    ChipStatus status;
    std::vector<AdoptionMeta> adoptions;
    /// local record id -> index into adoptions, for the manifest join.
    std::map<uint64_t, size_t> adopted_by_local;

    // Training tenant state (home and replica chips only).
    std::unique_ptr<ResilientTrainer> trainer;
    Dataset train_data;
    bool trainer_active = false;
    uint64_t steps_at_death = 0;
    uint64_t checkpoints_replicated = 0;
    bool restored = false;
    uint64_t restore_step = 0;
    std::vector<uint8_t> replica_ckpt;
    bool has_replica_ckpt = false;

    ChipHost(FleetCell &c, size_t i, DesDomain &d, const ServeSim &s)
        : cell(c), idx(i), dom(d), core(s, d)
    {
    }

    void heartbeat();
    void onFailure(bool degrade);
    void onAdopt(std::vector<AdoptItem> items);
    void buildTrainingData();
    void trainTick();
    void replicate();
    void onReplicaCheckpoint(uint64_t step, std::vector<uint8_t> bytes);
    void adoptTraining();
};

/** The global SLA router: liveness sweep, manifest collection, and
 *  policy dispatch. Lane 0 receives (heartbeats, manifests, bounces)
 *  ahead of the lane-1 liveness check at the same instant, so a
 *  heartbeat landing exactly at a sweep never reads as missed. */
struct RouterHost
{
    static constexpr int32_t kPriRecv = 0;
    static constexpr int32_t kPriCheck = 1;

    /** Per-failover-target retry-budget token bucket, refilled on the
     *  virtual clock. Starts full. */
    struct Bucket
    {
        double tokens = 0;
        int64_t last_ns = 0;
    };

    FleetCell &cell;
    DesDomain &dom;
    std::vector<int64_t> last_heard;
    std::vector<bool> declared;
    std::vector<bool> manifest_seen;
    std::vector<bool> processed;
    std::vector<int64_t> detect_ns;
    std::vector<std::vector<OrphanWire>> manifests;
    std::vector<Bucket> buckets;
    std::vector<RetryDenial> denials;

    RouterHost(FleetCell &c, DesDomain &d, size_t num_chips)
        : cell(c), dom(d), last_heard(num_chips, 0),
          declared(num_chips, false), manifest_seen(num_chips, false),
          processed(num_chips, false), detect_ns(num_chips, -1),
          manifests(num_chips), buckets(num_chips)
    {
    }

    void onHeartbeat(size_t chip) { last_heard[chip] = dom.now(); }
    void onManifest(size_t chip, std::vector<OrphanWire> wires);
    void onBounce(size_t from, std::vector<AdoptItem> items);
    void onCheck();
    void tryProcess(size_t chip);
    size_t successor(size_t from) const;
    void dispatchTo(size_t target, std::vector<AdoptItem> items);
    bool budgetAllow(size_t target);
};

/** One fleet instance wired into a shared engine. */
struct FleetCell
{
    const FleetSim &sim;
    const ClusterConfig &cfg;
    DesEngine &engine;
    std::vector<DomainId> chip_dom;
    DomainId router_dom = 0;
    std::vector<std::unique_ptr<ChipHost>> chips;
    std::unique_ptr<RouterHost> router;
    /// One-way fabric latency between ring nodes (chips 0..N-1,
    /// router at N), precomputed from the interconnect ring model.
    std::vector<std::vector<int64_t>> lat;
    /// Heartbeats and liveness sweeps stop here so the engine drains:
    /// failures are confined to the horizon, so nothing can need
    /// detection later.
    int64_t stop_ns = 0;

    FleetCell(DesEngine &eng, const FleetSim &fleet_sim,
              size_t cell_index);

    int64_t
    payloadNs(size_t bytes) const
    {
        return int64_t(
            std::ceil(double(bytes) * 8.0 / cfg.fabric.gbps));
    }
};

void
ChipHost::heartbeat()
{
    if (status.failed_stop)
        return;
    ++status.heartbeats_sent;
    const size_t router_node = cell.cfg.num_chips;
    dom.send(cell.router_dom, dom.now() + cell.lat[idx][router_node],
             RouterHost::kPriRecv,
             [r = cell.router.get(), chip = idx] {
                 r->onHeartbeat(chip);
             });
    const int64_t next = dom.now() + cell.cfg.heartbeat.interval_ns;
    if (next <= cell.stop_ns)
        dom.schedule(next, ServeDomainCore::kPriOverlay,
                     [this] { heartbeat(); });
}

void
ChipHost::onFailure(bool degrade)
{
    if (status.failed_stop)
        return;
    if (degrade) {
        // Degraded mode: dead cores / MPE rows stretch every future
        // batch through the degraded latency table; the chip keeps
        // serving and heartbeating.
        core.setTable(&cell.sim.degradedTable());
        status.degraded = true;
        return;
    }
    status.failed_stop = true;
    if (trainer) {
        trainer_active = false;
        steps_at_death = trainer->step();
    }
    HaltReport rep = core.halt();
    status.orphans = rep.orphans.size();

    // The death manifest: the front-end's request ledger for this
    // chip, transferred lazily — stranded requests joined with their
    // failover history so retry hops stay bounded across chained
    // deaths.
    std::vector<OrphanWire> wires;
    wires.reserve(rep.orphans.size());
    for (const OrphanRequest &o : rep.orphans) {
        OrphanWire w;
        const auto it = adopted_by_local.find(o.id);
        if (it != adopted_by_local.end()) {
            const AdoptionMeta &m = adoptions[it->second];
            w.origin_chip = m.origin_chip;
            w.origin_id = m.origin_id;
            w.origin_arrival_ns = m.origin_arrival_ns;
            w.attempts = m.attempts;
        } else {
            w.origin_chip = idx;
            w.origin_id = o.id;
            w.origin_arrival_ns = o.arrival_ns;
            w.attempts = 0;
        }
        w.tenant = o.tenant;
        w.local_arrival_ns = o.arrival_ns;
        w.admitted = o.admitted;
        wires.push_back(w);
    }
    const size_t router_node = cell.cfg.num_chips;
    dom.send(cell.router_dom, dom.now() + cell.lat[idx][router_node],
             RouterHost::kPriRecv,
             [r = cell.router.get(), chip = idx,
              moved = std::move(wires)] {
                 r->onManifest(chip, moved);
             });
}

void
ChipHost::onAdopt(std::vector<AdoptItem> items)
{
    if (status.failed_stop) {
        // The router raced a death it had not detected yet: bounce
        // the batch back so it can walk to the next successor.
        const size_t router_node = cell.cfg.num_chips;
        dom.send(cell.router_dom,
                 dom.now() + cell.lat[idx][router_node],
                 RouterHost::kPriRecv,
                 [r = cell.router.get(), chip = idx,
                  moved = std::move(items)] {
                     r->onBounce(chip, moved);
                 });
        return;
    }
    for (const AdoptItem &it : items) {
        // A retried request gets a fresh serving budget on the new
        // chip; the fleet ledger still measures its SLA from the
        // original arrival.
        const uint64_t lid = core.injectArrival(
            it.when, it.tenant,
            cell.cfg.serve.tenants[it.tenant].deadline_ns);
        adopted_by_local[lid] = adoptions.size();
        adoptions.push_back({idx, lid, it.origin_chip, it.origin_id,
                             it.origin_arrival_ns, it.attempts});
    }
}

void
ChipHost::buildTrainingData()
{
    Rng rng(cell.cfg.training.data_seed);
    train_data =
        makeSpirals(rng, cell.cfg.training.samples_per_class);
}

void
ChipHost::trainTick()
{
    if (status.failed_stop || !trainer_active)
        return;
    const TrainingTenantConfig &t = cell.cfg.training;
    trainer->runSteps(train_data, t.batch_size, 1);
    const bool is_home = idx == t.home_chip;
    if (is_home &&
        trainer->step() % uint64_t(t.checkpoint_interval) == 0)
        replicate();
    if (trainer->step() < t.steps)
        dom.scheduleIn(t.step_ns, ServeDomainCore::kPriOverlay,
                       [this] { trainTick(); });
    else
        trainer_active = false; // done
}

void
ChipHost::replicate()
{
    const TrainingTenantConfig &t = cell.cfg.training;
    const TrainerCheckpoint ckpt = trainer->checkpointNow();
    std::vector<uint8_t> bytes = serializeCheckpoint(ckpt);
    // Checkpoint payloads ride the same fabric as control messages,
    // charged byte-by-byte at the configured bandwidth.
    const int64_t delay = cell.lat[idx][t.replica_chip] +
                          cell.payloadNs(bytes.size());
    ++checkpoints_replicated;
    dom.send(cell.chip_dom[t.replica_chip], dom.now() + delay,
             ServeDomainCore::kPriOverlay,
             [r = cell.chips[t.replica_chip].get(), step = ckpt.step,
              moved = std::move(bytes)] {
                 r->onReplicaCheckpoint(step, moved);
             });
}

void
ChipHost::onReplicaCheckpoint(uint64_t step,
                              std::vector<uint8_t> bytes)
{
    if (status.failed_stop)
        return;
    replica_ckpt = std::move(bytes);
    has_replica_ckpt = true;
    (void)step;
}

void
ChipHost::adoptTraining()
{
    if (status.failed_stop || trainer)
        return;
    const TrainingTenantConfig &t = cell.cfg.training;
    trainer = std::make_unique<ResilientTrainer>(t.model,
                                                 t.resilience);
    buildTrainingData();
    if (has_replica_ckpt) {
        const TrainerCheckpoint ckpt =
            deserializeCheckpoint(replica_ckpt);
        trainer->rollbackTo(ckpt);
        restore_step = ckpt.step;
    }
    // No replicated checkpoint yet: restart from step 0 — every step
    // the home chip completed is rework.
    restored = true;
    if (trainer->step() < t.steps) {
        trainer_active = true;
        dom.scheduleIn(t.step_ns, ServeDomainCore::kPriOverlay,
                       [this] { trainTick(); });
    }
}

void
RouterHost::onManifest(size_t chip, std::vector<OrphanWire> wires)
{
    manifests[chip] = std::move(wires);
    manifest_seen[chip] = true;
    tryProcess(chip);
}

void
RouterHost::onCheck()
{
    const int64_t now = dom.now();
    const int64_t window = int64_t(cell.cfg.heartbeat.miss_threshold) *
                           cell.cfg.heartbeat.interval_ns;
    for (size_t chip = 0; chip < declared.size(); ++chip) {
        if (declared[chip] || now - last_heard[chip] < window)
            continue;
        declared[chip] = true;
        detect_ns[chip] = now;
        tryProcess(chip);
        const TrainingTenantConfig &t = cell.cfg.training;
        if (t.enabled && chip == t.home_chip &&
            cell.cfg.policy == FleetPolicy::FailoverRestore)
            dom.send(cell.chip_dom[t.replica_chip],
                     now + cell.lat[declared.size()][t.replica_chip],
                     ServeDomainCore::kPriOverlay,
                     [r = cell.chips[t.replica_chip].get()] {
                         r->adoptTraining();
                     });
    }
    const int64_t next = now + cell.cfg.heartbeat.interval_ns;
    if (next <= cell.stop_ns)
        dom.schedule(next, kPriCheck, [this] { onCheck(); });
}

/**
 * Draw one retry token from @p target's bucket; true when the retry
 * may dispatch. A dry bucket converts the retry into an accounted
 * shed — the caller records the denial — so a mass failure cannot
 * amplify into a retry storm against the survivor chip.
 */
bool
RouterHost::budgetAllow(size_t target)
{
    const RetryBudgetConfig &b = cell.cfg.failover.budget;
    if (!b.enabled)
        return true;
    Bucket &bk = buckets[target];
    const int64_t now = dom.now();
    bk.tokens = std::min(b.burst,
                         bk.tokens + double(now - bk.last_ns) * 1e-9 *
                                         b.tokens_per_s);
    bk.last_ns = now;
    if (bk.tokens < 1.0)
        return false;
    bk.tokens -= 1.0;
    return true;
}

size_t
RouterHost::successor(size_t from) const
{
    const size_t n = declared.size();
    for (size_t k = 1; k < n; ++k) {
        const size_t chip = (from + k) % n;
        if (!declared[chip])
            return chip;
    }
    return SIZE_MAX; // nobody the router believes alive
}

void
RouterHost::dispatchTo(size_t target, std::vector<AdoptItem> items)
{
    if (items.empty())
        return;
    dom.send(cell.chip_dom[target],
             dom.now() + cell.lat[declared.size()][target],
             ServeDomainCore::kPriOverlay,
             [h = cell.chips[target].get(),
              moved = std::move(items)] { h->onAdopt(moved); });
}

void
RouterHost::tryProcess(size_t chip)
{
    if (!declared[chip] || !manifest_seen[chip] || processed[chip])
        return;
    processed[chip] = true;
    if (cell.cfg.policy == FleetPolicy::NoFailover) {
        manifests[chip].clear(); // written off wholesale
        return;
    }
    const size_t target = successor(chip);
    if (target == SIZE_MAX) {
        manifests[chip].clear();
        return;
    }
    const int64_t t_detect = detect_ns[chip];
    const FailoverConfig &fo = cell.cfg.failover;
    std::vector<AdoptItem> items;
    for (const OrphanWire &w : manifests[chip]) {
        // Traffic arriving after detection is a clean redirect; the
        // rest was stranded inside the failure and (under
        // FailoverRestore) retries once its per-request timeout has
        // expired, plus backoff per hop already consumed.
        const bool future =
            !w.admitted && w.local_arrival_ns >= t_detect;
        if (cell.cfg.policy == FleetPolicy::DrainOnly && !future)
            continue;
        const int attempts = w.attempts + 1;
        if (attempts > fo.max_retries)
            continue;
        // Clean redirects of post-detection traffic ride free; only
        // stranded-request retries draw from the target's budget.
        if (!future && !budgetAllow(target)) {
            denials.push_back(
                {w.origin_chip, w.origin_id, dom.now()});
            continue;
        }
        AdoptItem it;
        it.tenant = w.tenant;
        it.when = future
                      ? w.local_arrival_ns
                      : std::max(t_detect, w.origin_arrival_ns +
                                               fo.request_timeout_ns) +
                            int64_t(attempts) * fo.retry_backoff_ns;
        it.origin_chip = w.origin_chip;
        it.origin_id = w.origin_id;
        it.origin_arrival_ns = w.origin_arrival_ns;
        it.attempts = attempts;
        items.push_back(it);
    }
    manifests[chip].clear();
    dispatchTo(target, std::move(items));
}

void
RouterHost::onBounce(size_t from, std::vector<AdoptItem> items)
{
    const size_t target = successor(from);
    if (target == SIZE_MAX)
        return;
    const FailoverConfig &fo = cell.cfg.failover;
    std::vector<AdoptItem> retry;
    retry.reserve(items.size());
    for (AdoptItem it : items) {
        ++it.attempts; // the bounced hop was consumed
        if (it.attempts > fo.max_retries)
            continue;
        if (!budgetAllow(target)) {
            denials.push_back(
                {it.origin_chip, it.origin_id, dom.now()});
            continue;
        }
        it.when =
            std::max(it.when, dom.now()) + fo.retry_backoff_ns;
        retry.push_back(it);
    }
    dispatchTo(target, std::move(retry));
}

FleetCell::FleetCell(DesEngine &eng, const FleetSim &fleet_sim,
                     size_t cell_index)
    : sim(fleet_sim), cfg(fleet_sim.config()), engine(eng)
{
    const size_t n = cfg.num_chips;
    const std::string prefix =
        "fleet" + std::to_string(cell_index) + ".";

    chip_dom.reserve(n);
    for (size_t i = 0; i < n; ++i)
        chip_dom.push_back(
            engine.addDomain(prefix + "chip" + std::to_string(i)));
    router_dom = engine.addDomain(prefix + "router");

    // Fabric latencies from the interconnect ring model (chips at
    // nodes 0..N-1, router at node N); each becomes the channel
    // lookahead of its direction.
    lat.assign(n + 1, std::vector<int64_t>(n + 1, 0));
    for (size_t a = 0; a <= n; ++a)
        for (size_t b = 0; b <= n; ++b)
            if (a != b)
                lat[a][b] = fabricDelayNs(cfg.fabric, n, a, b);

    for (size_t i = 0; i < n; ++i) {
        engine.connect(chip_dom[i], router_dom, lat[i][n]);
        engine.connect(router_dom, chip_dom[i], lat[n][i]);
    }
    if (cfg.training.enabled)
        engine.connect(chip_dom[cfg.training.home_chip],
                       chip_dom[cfg.training.replica_chip],
                       lat[cfg.training.home_chip]
                          [cfg.training.replica_chip]);

    stop_ns = cfg.serve.horizon_ns +
              int64_t(cfg.heartbeat.miss_threshold) *
                  cfg.heartbeat.interval_ns +
              maxFabricDelayNs(cfg.fabric, n) +
              cfg.heartbeat.interval_ns;

    router = std::make_unique<RouterHost>(*this,
                                          engine.domain(router_dom),
                                          n);
    for (RouterHost::Bucket &b : router->buckets)
        b.tokens = cfg.failover.budget.burst; // buckets start full
    for (size_t i = 0; i < n; ++i) {
        chips.push_back(std::make_unique<ChipHost>(
            *this, i, engine.domain(chip_dom[i]),
            fleet_sim.chipSim(i)));
        ChipHost &host = *chips.back();
        host.core.start();
        // Pretend a boot heartbeat is already in flight so a chip
        // failing before its first one is still detected on time.
        router->last_heard[i] = lat[i][n];
        host.dom.schedule(0, ServeDomainCore::kPriOverlay,
                          [h = &host] { h->heartbeat(); });
    }
    for (const PlannedFailure &f : fleet_sim.plan()) {
        ChipHost &host = *chips[f.chip];
        host.status.planned_failure = true;
        host.status.planned_degrade = f.degrade;
        host.status.planned_ns = f.time_ns;
        host.dom.schedule(f.time_ns, ServeDomainCore::kPriOverlay,
                          [h = &host, degrade = f.degrade] {
                              h->onFailure(degrade);
                          });
    }
    engine.domain(router_dom)
        .schedule(cfg.heartbeat.interval_ns, RouterHost::kPriCheck,
                  [r = router.get()] { r->onCheck(); });

    if (cfg.training.enabled) {
        ChipHost &home = *chips[cfg.training.home_chip];
        home.trainer = std::make_unique<ResilientTrainer>(
            cfg.training.model, cfg.training.resilience);
        home.buildTrainingData();
        home.trainer_active = true;
        home.dom.schedule(cfg.training.step_ns,
                          ServeDomainCore::kPriOverlay,
                          [h = &home] { h->trainTick(); });
    }
}

/** Assemble one cell's FleetResult after the engine ran dry. */
FleetResult
collectCell(FleetCell &cell, uint64_t windows)
{
    const ClusterConfig &cfg = cell.cfg;
    FleetResult out;
    out.windows = windows;
    out.chips.reserve(cfg.num_chips);
    out.status.reserve(cfg.num_chips);
    for (size_t i = 0; i < cfg.num_chips; ++i) {
        ChipHost &host = *cell.chips[i];
        out.chips.push_back(host.core.finish());
        ChipStatus st = host.status;
        st.detect_ns = cell.router->declared[i]
                           ? cell.router->detect_ns[i]
                           : -1;
        out.status.push_back(st);
        out.adoptions.insert(out.adoptions.end(),
                             host.adoptions.begin(),
                             host.adoptions.end());
    }
    out.budget_denials = std::move(cell.router->denials);

    TrainingOutcome &t = out.training;
    t.enabled = cfg.training.enabled;
    if (t.enabled) {
        ChipHost &home = *cell.chips[cfg.training.home_chip];
        ChipHost &rep = *cell.chips[cfg.training.replica_chip];
        t.steps_target = cfg.training.steps;
        t.home_failed = home.status.failed_stop;
        t.steps_at_death = home.steps_at_death;
        t.restored = rep.restored;
        t.restore_step = rep.restore_step;
        t.checkpoints_replicated = home.checkpoints_replicated;
        ResilientTrainer *survivor = nullptr;
        if (!home.status.failed_stop && home.trainer)
            survivor = home.trainer.get();
        else if (rep.restored && !rep.status.failed_stop &&
                 rep.trainer)
            survivor = rep.trainer.get();
        if (survivor) {
            t.steps_completed = survivor->step();
            t.final_checkpoint =
                serializeCheckpoint(survivor->checkpointNow());
        }
        if (t.home_failed)
            t.lost_steps = t.restored
                               ? t.steps_at_death - t.restore_step
                               : t.steps_at_death;
    }
    return out;
}

} // namespace

FleetSim::FleetSim(const ChipConfig &chip, const ClusterConfig &cfg)
    // Validate before any member does real work; the comma operator
    // keeps the always-on checks ahead of the field copies.
    : chip_((validateClusterConfig(cfg), validateChipConfig(chip),
             chip)),
      cfg_(cfg), plan_(buildFailurePlan(cfg_))
{
    sims_.reserve(cfg_.num_chips);
    for (size_t i = 0; i < cfg_.num_chips; ++i)
        sims_.push_back(std::make_unique<ServeSim>(
            chip_, shardServeConfig(cfg_, i)));

    // The degraded-mode table: the same chip with the configured
    // dead-core / dead-MPE-row masks. Shard tables are identical
    // across chips (every shard carries the full tenant list), so
    // one degraded table serves the whole fleet.
    degraded_chip_ = chip_;
    degraded_chip_.dead_core_mask |=
        (uint64_t(1) << cfg_.failures.degrade_dead_cores) - 1;
    degraded_chip_.dead_mpe_row_mask |=
        (uint64_t(1) << cfg_.failures.degrade_dead_mpe_rows) - 1;
    RAPID_CHECK_CONFIG(degraded_chip_.activeCores() >= 1,
                       "degrade_dead_cores ",
                       cfg_.failures.degrade_dead_cores,
                       " leaves no live core on a ", chip_.cores,
                       "-core chip");
    const ServeSim &shard0 = *sims_[0];
    std::vector<Network> nets;
    nets.reserve(shard0.networkNames().size());
    for (const std::string &name : shard0.networkNames())
        nets.push_back(benchmarkByName(name));
    degraded_table_ = std::make_unique<LatencyTable>(
        degraded_chip_, nets, tablePrecisions(shard0.config()),
        cfg_.serve.batcher.max_batch, cfg_.serve.fault);
}

const ServeSim &
FleetSim::chipSim(size_t chip) const
{
    RAPID_CHECK_ARG(chip < sims_.size(), "chipSim: chip ", chip,
                    " out of range for ", sims_.size(), " chips");
    return *sims_[chip];
}

FleetResult
FleetSim::run() const
{
    return runFleetBatch({this}).front();
}

std::vector<FleetResult>
runFleetBatch(const std::vector<const FleetSim *> &sims)
{
    DesEngine engine;
    std::vector<std::unique_ptr<FleetCell>> cells;
    cells.reserve(sims.size());
    for (size_t i = 0; i < sims.size(); ++i) {
        RAPID_CHECK_ARG(sims[i] != nullptr,
                        "runFleetBatch: null fleet at index ", i);
        cells.push_back(
            std::make_unique<FleetCell>(engine, *sims[i], i));
    }
    engine.run();
    std::vector<FleetResult> out;
    out.reserve(cells.size());
    for (auto &cell : cells)
        out.push_back(collectCell(*cell, engine.windows()));
    return out;
}

} // namespace rapid
