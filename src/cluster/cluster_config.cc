#include "cluster/cluster_config.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/fault.hh"
#include "common/random.hh"
#include "interconnect/ring.hh"

namespace rapid {

const char *
fleetPolicyName(FleetPolicy policy)
{
    switch (policy) {
      case FleetPolicy::NoFailover:
        return "no-failover";
      case FleetPolicy::DrainOnly:
        return "drain-only";
      case FleetPolicy::FailoverRestore:
        return "failover-restore";
    }
    return "?";
}

namespace {

/** The fleet's ring geometry: chips at 0..N-1, router at node N. */
RingConfig
fleetRing(const FabricConfig &fabric, size_t num_chips)
{
    RingConfig ring;
    ring.num_nodes = unsigned(num_chips) + 1;
    ring.bytes_per_flit = fabric.bytes_per_flit;
    return ring;
}

} // namespace

int64_t
fabricDelayNs(const FabricConfig &fabric, size_t num_chips, size_t src,
              size_t dst)
{
    RAPID_CHECK_ARG(src <= num_chips && dst <= num_chips && src != dst,
                    "fabricDelayNs: bad ring endpoints ", src, " -> ",
                    dst, " on ", num_chips, " chips");
    const RingNetwork ring(fleetRing(fabric, num_chips));
    const std::vector<unsigned> dsts{unsigned(dst)};
    const RingDir dir = ring.chooseDirection(unsigned(src), dsts);
    const unsigned hops =
        ring.hopDistance(unsigned(src), unsigned(dst), dir);
    return fabric.base_ns + int64_t(hops) * fabric.per_hop_ns;
}

int64_t
maxFabricDelayNs(const FabricConfig &fabric, size_t num_chips)
{
    // The shortest-direction hop count is at most half the ring.
    const int64_t max_hops = int64_t((num_chips + 1) / 2);
    return fabric.base_ns + max_hops * fabric.per_hop_ns;
}

void
validateClusterConfig(const ClusterConfig &cfg)
{
    RAPID_CHECK_ARG(cfg.num_chips >= 1,
                    "ClusterConfig.num_chips must be >= 1");
    validateServeConfig(cfg.serve);

    RAPID_CHECK_CONFIG(cfg.heartbeat.interval_ns > 0,
                       "heartbeat interval_ns must be positive, got ",
                       cfg.heartbeat.interval_ns);
    RAPID_CHECK_CONFIG(cfg.heartbeat.miss_threshold >= 2,
                       "heartbeat miss_threshold must be >= 2 (one "
                       "period always elapses between receipts), got ",
                       cfg.heartbeat.miss_threshold);

    RAPID_CHECK_CONFIG(cfg.failover.request_timeout_ns > 0,
                       "failover request_timeout_ns must be positive, "
                       "got ", cfg.failover.request_timeout_ns);
    RAPID_CHECK_CONFIG(cfg.failover.retry_backoff_ns >= 0,
                       "failover retry_backoff_ns must be >= 0, got ",
                       cfg.failover.retry_backoff_ns);
    RAPID_CHECK_CONFIG(cfg.failover.max_retries >= 1,
                       "failover max_retries must be >= 1, got ",
                       cfg.failover.max_retries);
    if (cfg.failover.budget.enabled) {
        RAPID_CHECK_CONFIG(
            std::isfinite(cfg.failover.budget.tokens_per_s) &&
                cfg.failover.budget.tokens_per_s > 0,
            "retry budget tokens_per_s must be positive, got ",
            cfg.failover.budget.tokens_per_s);
        RAPID_CHECK_CONFIG(std::isfinite(cfg.failover.budget.burst) &&
                               cfg.failover.budget.burst >= 1.0,
                           "retry budget burst must be >= 1 (a dry "
                           "bucket could never retry), got ",
                           cfg.failover.budget.burst);
    }

    RAPID_CHECK_CONFIG(cfg.fabric.base_ns > 0,
                       "fabric base_ns must be positive (channels "
                       "need strictly positive lookahead), got ",
                       cfg.fabric.base_ns);
    RAPID_CHECK_CONFIG(cfg.fabric.per_hop_ns >= 0,
                       "fabric per_hop_ns must be >= 0, got ",
                       cfg.fabric.per_hop_ns);
    RAPID_CHECK_CONFIG(std::isfinite(cfg.fabric.gbps) &&
                           cfg.fabric.gbps > 0,
                       "fabric gbps must be positive, got ",
                       cfg.fabric.gbps);
    RAPID_CHECK_CONFIG(cfg.fabric.bytes_per_flit >= 1,
                       "fabric bytes_per_flit must be >= 1");

    // The detection window must be wider than one heartbeat period
    // plus the worst-case delivery delay, or a live chip whose
    // heartbeat is merely in flight would be declared dead.
    const int64_t window = int64_t(cfg.heartbeat.miss_threshold) *
                           cfg.heartbeat.interval_ns;
    const int64_t worst = cfg.heartbeat.interval_ns +
                          maxFabricDelayNs(cfg.fabric, cfg.num_chips);
    RAPID_CHECK_CONFIG(window > worst,
                       "heartbeat detection window ", window,
                       " ns must exceed one period plus the "
                       "worst-case fabric delay (", worst,
                       " ns): a live chip's in-flight heartbeat "
                       "would be a false positive");

    RAPID_CHECK_CONFIG(std::isfinite(cfg.failures.rate) &&
                           cfg.failures.rate >= 0.0 &&
                           cfg.failures.rate <= 1.0,
                       "failure rate must be in [0, 1], got ",
                       cfg.failures.rate);
    RAPID_CHECK_CONFIG(std::isfinite(cfg.failures.degraded_fraction) &&
                           cfg.failures.degraded_fraction >= 0.0 &&
                           cfg.failures.degraded_fraction <= 1.0,
                       "degraded_fraction must be in [0, 1], got ",
                       cfg.failures.degraded_fraction);
    RAPID_CHECK_CONFIG(std::isfinite(cfg.failures.strike_window_lo) &&
                           std::isfinite(cfg.failures.strike_window_hi) &&
                           cfg.failures.strike_window_lo >= 0.0 &&
                           cfg.failures.strike_window_lo <
                               cfg.failures.strike_window_hi &&
                           cfg.failures.strike_window_hi <= 1.0,
                       "failure strike window must satisfy 0 <= lo < "
                       "hi <= 1, got [", cfg.failures.strike_window_lo,
                       ", ", cfg.failures.strike_window_hi, "]");
    std::vector<bool> seen(cfg.num_chips, false);
    for (const ScriptedFailure &f : cfg.failures.scripted) {
        RAPID_CHECK_CONFIG(f.chip < cfg.num_chips,
                           "scripted failure chip ", f.chip,
                           " out of range for ", cfg.num_chips,
                           " chips");
        RAPID_CHECK_CONFIG(f.time_ns > 0 &&
                               f.time_ns < cfg.serve.horizon_ns,
                           "scripted failure time ", f.time_ns,
                           " must lie strictly inside the horizon (0, ",
                           cfg.serve.horizon_ns, ")");
        RAPID_CHECK_CONFIG(!seen[f.chip],
                           "chip ", f.chip,
                           " has more than one scripted failure");
        seen[f.chip] = true;
    }

    const TrainingTenantConfig &t = cfg.training;
    if (t.enabled) {
        RAPID_CHECK_CONFIG(cfg.num_chips >= 2,
                           "a replicated training tenant needs at "
                           "least 2 chips, got ", cfg.num_chips);
        RAPID_CHECK_CONFIG(t.home_chip < cfg.num_chips &&
                               t.replica_chip < cfg.num_chips,
                           "training home/replica chip out of range");
        RAPID_CHECK_CONFIG(t.home_chip != t.replica_chip,
                           "training replica must differ from its "
                           "home chip ", t.home_chip);
        RAPID_CHECK_CONFIG(t.step_ns > 0,
                           "training step_ns must be positive, got ",
                           t.step_ns);
        RAPID_CHECK_CONFIG(t.steps >= 1,
                           "training steps must be >= 1");
        RAPID_CHECK_CONFIG(t.checkpoint_interval >= 1,
                           "training checkpoint_interval must be "
                           ">= 1 (replication cadence), got ",
                           t.checkpoint_interval);
        RAPID_CHECK_CONFIG(t.batch_size > 0 &&
                               t.samples_per_class > 0,
                           "training batch/dataset sizes must be "
                           "positive");
        validateResilienceConfig(t.resilience);
    }
}

ServeConfig
shardServeConfig(const ClusterConfig &cfg, size_t chip)
{
    RAPID_CHECK_ARG(chip < cfg.num_chips, "shardServeConfig: chip ",
                    chip, " out of range for ", cfg.num_chips,
                    " chips");
    ServeConfig shard = cfg.serve;
    for (size_t ti = 0; ti < shard.tenants.size(); ++ti)
        if (ti % cfg.num_chips != chip)
            shard.tenants[ti].arrival_rps = 0.0;
    return shard;
}

std::vector<PlannedFailure>
buildFailurePlan(const ClusterConfig &cfg)
{
    std::vector<PlannedFailure> plan;
    if (!cfg.failures.scripted.empty()) {
        for (const ScriptedFailure &f : cfg.failures.scripted)
            plan.push_back({f.chip, f.time_ns, f.degrade});
    } else if (cfg.failures.rate > 0.0) {
        for (size_t chip = 0; chip < cfg.num_chips; ++chip) {
            Rng rng(mixSeed(cfg.failures.seed, chip));
            if (rng.uniform() >= cfg.failures.rate)
                continue;
            // Strike inside the configured window of the horizon so
            // detection and drain always have room on both sides.
            const double lo = cfg.failures.strike_window_lo *
                              double(cfg.serve.horizon_ns);
            const double hi = cfg.failures.strike_window_hi *
                              double(cfg.serve.horizon_ns);
            const int64_t when =
                std::max<int64_t>(1, int64_t(rng.uniform(lo, hi)));
            const bool degrade =
                rng.uniform() < cfg.failures.degraded_fraction;
            plan.push_back({chip, when, degrade});
        }
    }
    std::sort(plan.begin(), plan.end(),
              [](const PlannedFailure &a, const PlannedFailure &b) {
                  if (a.time_ns != b.time_ns)
                      return a.time_ns < b.time_ns;
                  return a.chip < b.chip;
              });
    return plan;
}

} // namespace rapid
