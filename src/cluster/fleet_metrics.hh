/**
 * @file
 * The fleet ledger: resolves every origin request of a FleetResult to
 * exactly one terminal record (its own, or the last adoption of its
 * failover chain) and aggregates global serving outcomes — closed
 * offered/completed/shed/failed accounting, SLA measured from the
 * *origin* arrival across failovers, goodput, and fleet liveness —
 * plus the golden-diffed text report and the BENCH_cluster.json
 * records.
 */

#ifndef RAPID_CLUSTER_FLEET_METRICS_HH
#define RAPID_CLUSTER_FLEET_METRICS_HH

#include <cstdint>
#include <string>

#include "cluster/fleet.hh"
#include "serve/metrics.hh"

namespace rapid {

/** Origin-resolved global outcome of one fleet run. */
struct FleetLedger
{
    uint64_t offered = 0;   ///< origin requests fleet-wide
    uint64_t completed = 0; ///< origins whose terminal completed
    uint64_t shed = 0;      ///< origins shed at terminal admission
    uint64_t failed = 0;    ///< origins written off (chain exhausted)
    /// Origins whose retry a dry budget converted to a shed
    /// (cfg.failover.budget); disjoint from failed.
    uint64_t shed_budget = 0;
    uint64_t retries_denied = 0; ///< router budget denials
    /// Origins that completed on a chip other than their home.
    uint64_t failed_over = 0;
    uint64_t retries = 0; ///< adoption records (failover deliveries)
    uint64_t sla_met = 0; ///< completed within the tenant deadline,
                          ///< measured from the origin arrival
    uint64_t violations = 0;
    LatencyStats latency; ///< origin arrival -> terminal completion
    double offered_rps = 0;
    double goodput_rps = 0; ///< sla_met per offered-horizon second
    /// Chip-seconds alive over total chip-seconds of the horizon.
    double live_fraction = 1.0;
    size_t chips_failed = 0;
    size_t chips_degraded = 0;
    uint64_t windows = 0;

    /** Global conservation law: every origin resolves to exactly one
     *  terminal state. */
    bool closed() const
    {
        return offered == completed + shed + failed + shed_budget;
    }
};

/**
 * Resolve @p result against the failover chains. rapid_assert-fails
 * if any adoption cannot be joined back to a record (a protocol bug,
 * not a config error).
 */
FleetLedger buildFleetLedger(const ClusterConfig &cfg,
                             const FleetResult &result);

/**
 * Stable text report for golden diffing: a per-chip table (state,
 * detection time, local record counts, orphans, adoptions), the
 * origin-resolved fleet summary, and — when the training tenant is
 * enabled — a training line ending in an FNV-1a digest of the final
 * checkpoint bytes (pins bit-exact restore in the goldens).
 */
std::string fleetReport(const ClusterConfig &cfg,
                        const FleetResult &result,
                        const FleetLedger &ledger);

/**
 * One JSON line for the BENCH_cluster.json assembly. Carries the raw
 * accounting fields and "closed" so scripts/assemble_cluster.py can
 * hard-fail on an open ledger.
 */
std::string clusterJsonRecord(const std::string &section,
                              const ClusterConfig &cfg,
                              const FleetResult &result,
                              const FleetLedger &ledger);

} // namespace rapid

#endif // RAPID_CLUSTER_FLEET_METRICS_HH
