#include "cluster/fleet_metrics.hh"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"

namespace rapid {

namespace {

using RecordKey = std::pair<size_t, uint64_t>; ///< (chip, record id)

std::string
ms(int64_t ns)
{
    return Table::fmt(double(ns) * 1e-6, 3);
}

std::string
pctOf(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "-";
    return Table::fmt(100.0 * double(part) / double(whole), 1) + "%";
}

uint64_t
fnv1a(const std::vector<uint8_t> &bytes)
{
    uint64_t h = 1469598103934665603ull;
    for (uint8_t b : bytes) {
        h ^= uint64_t(b);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex16(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return std::string(buf);
}

} // namespace

FleetLedger
buildFleetLedger(const ClusterConfig &cfg, const FleetResult &result)
{
    FleetLedger out;
    out.windows = result.windows;
    out.retries = result.adoptions.size();
    out.retries_denied = result.budget_denials.size();

    // Origins whose retry the budget denied: their chain ends in a
    // failed record, but the write-off was a *deliberate* shed, so
    // the ledger accounts it separately from a genuine loss.
    std::map<RecordKey, bool> denied;
    for (const RetryDenial &d : result.budget_denials)
        denied[{d.origin_chip, d.origin_id}] = true;

    // Join each adoption to its host record, and group the chains by
    // ultimate origin (wires flatten multi-hop chains, so the group
    // key is direct).
    std::map<RecordKey, const AdoptionMeta *> hosts;
    std::map<RecordKey, std::vector<const AdoptionMeta *>> chains;
    for (const AdoptionMeta &a : result.adoptions) {
        rapid_assert(a.host_chip < result.chips.size() &&
                         a.local_id <
                             result.chips[a.host_chip].requests.size(),
                     "adoption points at a missing record");
        hosts[{a.host_chip, a.local_id}] = &a;
        chains[{a.origin_chip, a.origin_id}].push_back(&a);
    }

    std::vector<int64_t> latencies;
    for (size_t chip = 0; chip < result.chips.size(); ++chip) {
        for (const RequestRecord &r : result.chips[chip].requests) {
            if (hosts.count({chip, r.id}))
                continue; // an adopted copy, resolved via its origin
            ++out.offered;

            // Walk to the chain's terminal record: the highest-
            // attempt adoption (attempts grow strictly along a
            // chain), or the origin record itself when it never
            // failed over.
            const RequestRecord *terminal = &r;
            size_t terminal_chip = chip;
            const auto it = chains.find({chip, r.id});
            if (it != chains.end()) {
                const AdoptionMeta *last = it->second.front();
                for (const AdoptionMeta *a : it->second)
                    if (a->attempts > last->attempts)
                        last = a;
                terminal_chip = last->host_chip;
                terminal = &result.chips[last->host_chip]
                                .requests[last->local_id];
            }

            if (terminal->failed) {
                if (denied.count({chip, r.id}))
                    ++out.shed_budget;
                else
                    ++out.failed;
            } else if (terminal->shed) {
                ++out.shed;
            } else {
                ++out.completed;
                if (terminal_chip != chip)
                    ++out.failed_over;
                const int64_t lat =
                    terminal->completion_ns - r.arrival_ns;
                latencies.push_back(lat);
                const int64_t deadline =
                    cfg.serve.tenants[r.tenant].deadline_ns;
                if (lat <= deadline)
                    ++out.sla_met;
                else
                    ++out.violations;
            }
        }
    }

    std::sort(latencies.begin(), latencies.end());
    out.latency = summarizeLatencies(latencies);
    const double horizon_s = double(cfg.serve.horizon_ns) * 1e-9;
    out.offered_rps = double(out.offered) / horizon_s;
    out.goodput_rps = double(out.sla_met) / horizon_s;

    double live_ns = 0;
    for (const ChipStatus &st : result.status) {
        if (st.failed_stop) {
            ++out.chips_failed;
            live_ns += double(
                std::min(st.planned_ns, cfg.serve.horizon_ns));
        } else {
            live_ns += double(cfg.serve.horizon_ns);
        }
        if (st.degraded)
            ++out.chips_degraded;
    }
    out.live_fraction =
        live_ns / (double(cfg.serve.horizon_ns) *
                   double(result.status.size()));
    return out;
}

std::string
fleetReport(const ClusterConfig &cfg, const FleetResult &result,
            const FleetLedger &ledger)
{
    Table t({"Chip", "State", "Fail ms", "Detect ms", "Records",
             "Done", "Failed", "Shed", "Orphans", "Adopted", "Hb"});
    for (size_t chip = 0; chip < result.chips.size(); ++chip) {
        const ChipStatus &st = result.status[chip];
        const ServeResult &sr = result.chips[chip];
        uint64_t done = 0, failed = 0, shed = 0;
        for (const RequestRecord &r : sr.requests) {
            if (r.failed)
                ++failed;
            else if (r.shed)
                ++shed;
            else
                ++done;
        }
        uint64_t adopted = 0;
        for (const AdoptionMeta &a : result.adoptions)
            if (a.host_chip == chip)
                ++adopted;
        const char *state = st.failed_stop
                                ? "dead"
                                : (st.degraded ? "degraded" : "ok");
        t.addRow({std::to_string(chip), state,
                  st.planned_ns >= 0 ? ms(st.planned_ns) : "-",
                  st.detect_ns >= 0 ? ms(st.detect_ns) : "-",
                  std::to_string(sr.requests.size()),
                  std::to_string(done), std::to_string(failed),
                  std::to_string(shed), std::to_string(st.orphans),
                  std::to_string(adopted),
                  std::to_string(st.heartbeats_sent)});
    }

    std::ostringstream oss;
    oss << t.str();
    oss << "fleet [" << fleetPolicyName(cfg.policy) << "]: offered "
        << ledger.offered << ", completed " << ledger.completed
        << " (failed-over " << ledger.failed_over << "), shed "
        << ledger.shed << ", failed " << ledger.failed << ", retries "
        << ledger.retries << ", closed "
        << (ledger.closed() ? "yes" : "NO") << "\n";
    if (cfg.failover.budget.enabled)
        oss << "budget: " << ledger.retries_denied
            << " retries denied, " << ledger.shed_budget
            << " origins converted to shed\n";
    oss << "fleet: sla " << pctOf(ledger.sla_met, ledger.completed)
        << " of completed, p99 " << ms(ledger.latency.p99)
        << " ms, goodput " << Table::fmt(ledger.goodput_rps, 1)
        << "/s of " << Table::fmt(ledger.offered_rps, 1)
        << "/s offered, live "
        << Table::fmt(100.0 * ledger.live_fraction, 1) << "%\n";

    const TrainingOutcome &tr = result.training;
    if (tr.enabled) {
        oss << "training: " << tr.steps_completed << "/"
            << tr.steps_target << " steps";
        if (tr.home_failed)
            oss << ", home died at step " << tr.steps_at_death;
        if (tr.restored)
            oss << ", restored from checkpoint step "
                << tr.restore_step << " (lost " << tr.lost_steps
                << " steps)";
        oss << ", " << tr.checkpoints_replicated << " ckpts shipped";
        if (!tr.final_checkpoint.empty())
            oss << ", final state "
                << hex16(fnv1a(tr.final_checkpoint));
        else
            oss << ", LOST";
        oss << "\n";
    }
    return oss.str();
}

std::string
clusterJsonRecord(const std::string &section, const ClusterConfig &cfg,
                  const FleetResult &result, const FleetLedger &ledger)
{
    const TrainingOutcome &tr = result.training;
    std::ostringstream oss;
    oss << "{\"section\":\"" << section << "\",\"policy\":\""
        << fleetPolicyName(cfg.policy)
        << "\",\"num_chips\":" << cfg.num_chips
        << ",\"failure_rate\":" << Table::fmt(cfg.failures.rate, 3)
        << ",\"offered\":" << ledger.offered
        << ",\"completed\":" << ledger.completed
        << ",\"shed\":" << ledger.shed
        << ",\"failed\":" << ledger.failed
        << ",\"failed_over\":" << ledger.failed_over
        << ",\"shed_budget\":" << ledger.shed_budget
        << ",\"retries_denied\":" << ledger.retries_denied
        << ",\"retries\":" << ledger.retries
        << ",\"sla_met\":" << ledger.sla_met
        << ",\"violations\":" << ledger.violations
        << ",\"p99_ms\":" << ms(ledger.latency.p99)
        << ",\"goodput_rps\":" << Table::fmt(ledger.goodput_rps, 3)
        << ",\"offered_rps\":" << Table::fmt(ledger.offered_rps, 3)
        << ",\"live_fraction\":"
        << Table::fmt(ledger.live_fraction, 4)
        << ",\"chips_failed\":" << ledger.chips_failed
        << ",\"chips_degraded\":" << ledger.chips_degraded
        << ",\"windows\":" << ledger.windows
        << ",\"closed\":" << (ledger.closed() ? "true" : "false")
        << ",\"training_enabled\":"
        << (tr.enabled ? "true" : "false")
        << ",\"training_restored\":"
        << (tr.restored ? "true" : "false")
        << ",\"training_lost_steps\":" << tr.lost_steps << "}";
    return oss.str();
}

} // namespace rapid
