/**
 * @file
 * The fleet simulator: N ServeDomainCore-backed chips and one global
 * SLA router as domains of a DesEngine, wired with connect() channels
 * whose lookahead is the ring-hop fabric latency (chips at ring nodes
 * 0..N-1, router at node N). The serving data plane stays entirely
 * chip-local — each chip generates and serves its own tenant shard —
 * while the router runs the control plane: heartbeat liveness,
 * death-manifest collection, drain/failover dispatch, and training
 * adoption.
 *
 * Failure protocol (all times on the shared virtual clock):
 *
 *  1. Every chip heartbeats the router each interval; the router
 *     sweeps liveness each interval and declares a chip dead once
 *     now - last_heard >= miss_threshold * interval (the config
 *     validator guarantees a live chip can never trip this).
 *  2. A fail-stop chip halts its serving core at the failure instant;
 *     every unfinished request becomes `failed` locally and is sent
 *     to the router as an orphan manifest (the front-end's request
 *     ledger, transferred lazily). A degraded chip instead swaps its
 *     latency table for the degraded-chip table and keeps serving
 *     and heartbeating.
 *  3. When a chip is both declared dead and its manifest has arrived,
 *     the router dispatches per policy: NoFailover writes everything
 *     off; DrainOnly re-routes only traffic arriving after detection
 *     to the ring successor; FailoverRestore also retries stranded
 *     requests at max(detection, arrival + request_timeout) +
 *     attempts * backoff, each request taking at most max_retries
 *     failover hops (a hop onto a chip that died meanwhile bounces
 *     back and consumes another hop).
 *  4. Adopted requests are fresh records on the target chip
 *     (injectArrival), linked to their origin by AdoptionMeta; the
 *     fleet ledger (fleet_metrics) resolves every origin request to
 *     exactly one terminal record, closing the global accounting.
 *  5. The training tenant steps on its home chip every step_ns and
 *     replicates serialized checkpoints to its replica chip with a
 *     payload-size-dependent fabric delay. Under FailoverRestore the
 *     router tells the replica to adopt on home death: it restores
 *     the latest replicated checkpoint and replays to the target
 *     step count, bit-exact versus an unfailed run.
 *
 * Determinism: every decision runs inside domain events whose order
 * is the engine's stable (time, lane, seq) order, all randomness is
 * drawn from mixSeed streams at config time, and cross-domain effects
 * travel only through channels — so fleet results are bit-identical
 * at any --threads N, which the schedule-fuzz tests pin.
 */

#ifndef RAPID_CLUSTER_FLEET_HH
#define RAPID_CLUSTER_FLEET_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/config.hh"
#include "cluster/cluster_config.hh"
#include "serve/latency_table.hh"
#include "serve/server_sim.hh"

namespace rapid {

/** Links an adopted (failover) request record to its origin. */
struct AdoptionMeta
{
    size_t host_chip = 0;  ///< chip holding the new record
    uint64_t local_id = 0; ///< record id on host_chip
    size_t origin_chip = 0;
    uint64_t origin_id = 0;
    int64_t origin_arrival_ns = 0;
    int attempts = 0; ///< failover hops consumed (1 = first)
};

/** Per-chip outcome of one fleet run. */
struct ChipStatus
{
    bool planned_failure = false;
    bool planned_degrade = false;
    int64_t planned_ns = -1;
    bool failed_stop = false; ///< chip actually halted
    bool degraded = false;    ///< chip actually degraded
    int64_t detect_ns = -1;   ///< router declared dead (fail-stop)
    uint64_t heartbeats_sent = 0;
    uint64_t orphans = 0; ///< requests stranded by the halt
};

/** Outcome of the co-scheduled training tenant. */
struct TrainingOutcome
{
    bool enabled = false;
    bool home_failed = false;
    bool restored = false; ///< replica adopted and resumed
    uint64_t steps_target = 0;
    uint64_t steps_completed = 0; ///< by the surviving trainer
    uint64_t steps_at_death = 0;  ///< home progress when it died
    uint64_t restore_step = 0;    ///< checkpoint step resumed from
    uint64_t lost_steps = 0;      ///< rework replayed on the replica
    uint64_t checkpoints_replicated = 0;
    /// Serialized final checkpoint of the surviving trainer; empty
    /// when training was lost (home died without restore).
    std::vector<uint8_t> final_checkpoint;
};

/** One retry converted to an accounted shed by a dry retry budget
 *  (cfg.failover.budget): the origin request takes no further hops. */
struct RetryDenial
{
    size_t origin_chip = 0;
    uint64_t origin_id = 0;
    int64_t time_ns = 0; ///< router decision instant
};

/** Raw outcome of one fleet run; fleet_metrics aggregates it. */
struct FleetResult
{
    std::vector<ServeResult> chips; ///< chip-local serving results
    std::vector<ChipStatus> status;
    /// Every failover adoption, in (host chip, local id) order.
    std::vector<AdoptionMeta> adoptions;
    /// Retries the budget denied, in router decision order (empty
    /// when the budget is off).
    std::vector<RetryDenial> budget_denials;
    TrainingOutcome training;
    uint64_t windows = 0; ///< engine windows (determinism metric)
};

/**
 * The fleet simulator: builds one ServeSim per chip from its tenant
 * shard (plus the degraded-mode latency table) at construction, then
 * runs the failure/failover protocol on the DES engine per run().
 */
class FleetSim
{
  public:
    /** Validates the config and compiles every chip's latency
     *  tables. Throws rapid::Error on an invalid scenario. */
    FleetSim(const ChipConfig &chip, const ClusterConfig &cfg);

    const ClusterConfig &config() const { return cfg_; }
    const std::vector<PlannedFailure> &plan() const { return plan_; }
    /** The chip's shard simulator (what an independent run uses). */
    const ServeSim &chipSim(size_t chip) const;
    /** The degraded-mode latency table shared by every chip. */
    const LatencyTable &degradedTable() const
    {
        return *degraded_table_;
    }

    /** Run the fleet to drain (single engine; use runFleetBatch to
     *  advance many fleets in parallel). */
    FleetResult run() const;

  private:
    friend std::vector<FleetResult> runFleetBatch(
        const std::vector<const FleetSim *> &sims);

    ChipConfig chip_;
    ClusterConfig cfg_;
    std::vector<PlannedFailure> plan_;
    std::vector<std::unique_ptr<ServeSim>> sims_; ///< per chip
    ChipConfig degraded_chip_;
    std::unique_ptr<LatencyTable> degraded_table_;
};

/**
 * Run many independent fleets as domain groups of one DesEngine:
 * cells share the conservative windows but exchange no messages, so
 * the whole batch advances in parallel on the shared ThreadPool and
 * every entry is bit-identical to sims[i]->run() at any --threads N.
 * Throws rapid::Error on a null entry.
 */
std::vector<FleetResult> runFleetBatch(
    const std::vector<const FleetSim *> &sims);

} // namespace rapid

#endif // RAPID_CLUSTER_FLEET_HH
