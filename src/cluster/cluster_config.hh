/**
 * @file
 * Configuration of a simulated RaPiD serving datacenter: N ServeSim
 * chips behind a global SLA router, a heartbeat failure detector, a
 * drain/failover policy, a ring-fabric latency model, a deterministic
 * chip-failure plan, and an optional co-scheduled training tenant
 * whose checkpoints replicate to a peer chip.
 *
 * Tenant sharding and model replication: shardServeConfig(cfg, chip)
 * keeps the *global* tenant list on every chip (so every chip's
 * latency table covers every tenant's network and quality floor —
 * the model-replication assumption that makes any chip a valid
 * failover target) but zeroes arrival_rps for tenants whose home is
 * another chip (home = tenant index mod num_chips). Because the
 * per-tenant arrival streams are seeded by (serve.seed, tenant
 * index), the fleet at failure rate 0 serves exactly the global
 * workload partitioned by home chip, and each chip is provably an
 * independent ServeSim run of its shard.
 */

#ifndef RAPID_CLUSTER_CLUSTER_CONFIG_HH
#define RAPID_CLUSTER_CLUSTER_CONFIG_HH

#include <cstdint>
#include <vector>

#include "func/trainer.hh"
#include "resilience/resilient_trainer.hh"
#include "serve/serve_config.hh"

namespace rapid {

/** What the fleet does about a dead chip. */
enum class FleetPolicy
{
    /// Detect only: every stranded and future request of a dead chip
    /// is lost (the collapse baseline).
    NoFailover,
    /// Re-route the dead chip's future traffic to a live successor;
    /// requests already admitted or in the detection blackout are
    /// lost, and training state is not restored.
    DrainOnly,
    /// Drain plus bounded retry of stranded requests (per-request
    /// timeout + backoff) and checkpoint-replica training restore.
    FailoverRestore,
};

const char *fleetPolicyName(FleetPolicy policy);

/** Failure detector knobs. */
struct HeartbeatConfig
{
    /// Period of each chip's heartbeat to the router (and of the
    /// router's liveness sweep).
    int64_t interval_ns = 5'000'000;
    /// Missed intervals before the router declares a chip dead. Must
    /// leave the detection window wider than one heartbeat period
    /// plus the worst-case fabric delivery delay (validated).
    int miss_threshold = 3;
};

/**
 * Fleet-level retry budget: a token bucket per failover target chip.
 * Every stranded-retry or bounce re-dispatch aimed at a chip consumes
 * one token from that chip's bucket; when the bucket is dry the retry
 * converts to an accounted shed (FleetLedger.shed_budget) instead of
 * joining the storm hammering the survivor. Buckets refill on the
 * virtual clock at tokens_per_s, capped at burst. Defaults off —
 * bit-identical to the unbudgeted router.
 */
struct RetryBudgetConfig
{
    bool enabled = false;
    double tokens_per_s = 50.0;
    double burst = 10.0;
};

/** Failover retry/backoff bounds. */
struct FailoverConfig
{
    /// A request stranded on a dead chip is presumed lost this long
    /// after its arrival; the retry fires at
    /// max(detection, arrival + timeout) + attempts * backoff.
    int64_t request_timeout_ns = 20'000'000;
    int64_t retry_backoff_ns = 1'000'000;
    /// Failover hops any one request may take before it is written
    /// off (each adoption or bounce re-dispatch consumes one).
    int max_retries = 3;
    RetryBudgetConfig budget;
};

/** Chip-to-chip/router fabric latency model: messages ride the
 *  interconnect ring (chips at nodes 0..N-1, router at node N) with
 *  a software/RPC floor plus a per-hop cost; the per-channel DES
 *  lookahead is exactly this message latency. */
struct FabricConfig
{
    int64_t base_ns = 100'000; ///< software/RPC floor per message
    int64_t per_hop_ns = 10'000;
    double gbps = 128.0;           ///< replication payload bandwidth
    unsigned bytes_per_flit = 128; ///< ring geometry (RingConfig)
};

/** One scripted chip transition for tests and kill-sequence fuzzing. */
struct ScriptedFailure
{
    size_t chip = 0;
    int64_t time_ns = 0;  ///< must be positive and inside the horizon
    bool degrade = false; ///< degraded-mode transition vs fail-stop
};

/** Deterministic seeded failure plan: at most one transition per
 *  chip, drawn at config time so every run of the same config sees
 *  the same deaths at any thread count. */
struct FailureModel
{
    /// Per-chip probability of a failure within the serve horizon.
    double rate = 0.0;
    /// Of the failing chips, the fraction that degrade (dead cores /
    /// MPE rows via the existing chip masks) instead of fail-stop.
    double degraded_fraction = 0.0;
    /// Seeded strikes land uniformly inside the
    /// [strike_window_lo, strike_window_hi] fraction of the horizon,
    /// so detection and drain always have room on both sides.
    /// Requires 0 <= lo < hi <= 1.
    double strike_window_lo = 0.1;
    double strike_window_hi = 0.9;
    /// Dead-core / dead-MPE-row masks applied on a degrade.
    unsigned degrade_dead_cores = 1;
    unsigned degrade_dead_mpe_rows = 0;
    uint64_t seed = 0xfa11edULL;
    /// When non-empty, overrides the seeded draw entirely.
    std::vector<ScriptedFailure> scripted;
};

/** The co-scheduled training tenant: lives on home_chip, replicates
 *  every checkpoint_interval-step snapshot to replica_chip, and under
 *  FailoverRestore resumes there bit-exactly after a home death. */
struct TrainingTenantConfig
{
    bool enabled = false;
    size_t home_chip = 0;
    size_t replica_chip = 1;
    MlpConfig model;
    ResilienceConfig resilience;
    /// Virtual time per optimizer step on the fleet clock.
    int64_t step_ns = 2'000'000;
    uint64_t steps = 200;
    /// Steps between replicated checkpoints.
    int checkpoint_interval = 25;
    int64_t batch_size = 32;
    int64_t samples_per_class = 128; ///< spiral training set size / 2
    uint64_t data_seed = 7;
};

/** A full fleet scenario. */
struct ClusterConfig
{
    size_t num_chips = 4;
    /// Global serving scenario; tenants shard across chips by index
    /// mod num_chips (see shardServeConfig).
    ServeConfig serve;
    FleetPolicy policy = FleetPolicy::FailoverRestore;
    HeartbeatConfig heartbeat;
    FailoverConfig failover;
    FabricConfig fabric;
    FailureModel failures;
    TrainingTenantConfig training;
};

/**
 * Throw rapid::Error (InvalidArgument / InvalidConfig) on a
 * non-runnable fleet: zero chips, bad heartbeat/timeout/fabric knobs,
 * a detection window narrower than one heartbeat period plus the
 * worst-case fabric delay, failure rates outside [0, 1], scripted
 * failures out of range or duplicated per chip, or a training tenant
 * whose home/replica placement is invalid.
 */
void validateClusterConfig(const ClusterConfig &cfg);

/** Per-chip shard of the global serving scenario (see file docs). */
ServeConfig shardServeConfig(const ClusterConfig &cfg, size_t chip);

/** One planned chip transition of a run. */
struct PlannedFailure
{
    size_t chip = 0;
    int64_t time_ns = 0;
    bool degrade = false;
};

/**
 * The deterministic failure plan of @p cfg: the scripted list when
 * set, otherwise per-chip seeded draws (fail with probability rate,
 * uniformly inside the middle [10%, 90%] of the horizon, degrade with
 * probability degraded_fraction). Sorted by (time, chip); at most one
 * entry per chip.
 */
std::vector<PlannedFailure> buildFailurePlan(const ClusterConfig &cfg);

/**
 * Worst-case one-way fabric latency (ns) between any two of the
 * num_chips + 1 ring nodes under @p fabric — the heartbeat
 * feasibility bound and the channel-lookahead ceiling.
 */
int64_t maxFabricDelayNs(const FabricConfig &fabric, size_t num_chips);

/** One-way fabric latency between ring nodes @p src and @p dst
 *  (chips at 0..num_chips-1, router at num_chips). */
int64_t fabricDelayNs(const FabricConfig &fabric, size_t num_chips,
                      size_t src, size_t dst);

} // namespace rapid

#endif // RAPID_CLUSTER_CLUSTER_CONFIG_HH
