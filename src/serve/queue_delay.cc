#include "serve/queue_delay.hh"

#include <algorithm>

#include "common/error.hh"
#include "serve/metrics.hh"

namespace rapid {

QueueDelayEstimator::QueueDelayEstimator(size_t window)
{
    RAPID_CHECK_ARG(window > 0,
                    "QueueDelayEstimator: zero history window");
    window_.assign(window, 0);
}

void
QueueDelayEstimator::record(int64_t wait_ns)
{
    RAPID_CHECK_ARG(wait_ns >= 0,
                    "QueueDelayEstimator: negative wait ", wait_ns);
    window_[next_] = wait_ns;
    next_ = (next_ + 1) % window_.size();
    if (next_ == 0)
        full_ = true;
    ++count_;
}

size_t
QueueDelayEstimator::windowFill() const
{
    return full_ ? window_.size() : next_;
}

int64_t
QueueDelayEstimator::meanNs() const
{
    const size_t n = windowFill();
    if (n == 0)
        return 0;
    double sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += double(window_[i]);
    return int64_t(sum / double(n));
}

int64_t
QueueDelayEstimator::p95Ns() const
{
    const size_t n = windowFill();
    if (n == 0)
        return 0;
    std::vector<int64_t> sorted(window_.begin(),
                                window_.begin() + long(n));
    std::sort(sorted.begin(), sorted.end());
    return latencyPercentile(sorted, 0.95);
}

} // namespace rapid
