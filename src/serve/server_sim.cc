#include "serve/server_sim.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/des.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "serve/serve_domain.hh"
#include "workloads/networks.hh"

namespace rapid {

namespace {

constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

std::vector<std::string>
uniqueNetworkNames(const ServeConfig &cfg)
{
    std::vector<std::string> names;
    for (const TenantConfig &t : cfg.tenants)
        if (std::find(names.begin(), names.end(), t.network) ==
            names.end())
            names.push_back(t.network);
    return names;
}

std::vector<size_t>
mapTenants(const ServeConfig &cfg,
           const std::vector<std::string> &names)
{
    std::vector<size_t> map;
    map.reserve(cfg.tenants.size());
    for (const TenantConfig &t : cfg.tenants) {
        const auto it =
            std::find(names.begin(), names.end(), t.network);
        rapid_assert(it != names.end(), "unmapped tenant network");
        map.push_back(size_t(it - names.begin()));
    }
    return map;
}

std::vector<Network>
buildNetworks(const std::vector<std::string> &names)
{
    std::vector<Network> nets;
    nets.reserve(names.size());
    for (const std::string &n : names)
        nets.push_back(benchmarkByName(n));
    return nets;
}

/** One dynamic-batching queue: requests of one (network, precision). */
struct Queue
{
    size_t network = 0;
    Precision precision = Precision::INT4;
    std::vector<uint64_t> pending; ///< request ids, FIFO
    size_t head = 0;               ///< index of the oldest pending id

    size_t depth() const { return pending.size() - head; }
    bool empty() const { return head == pending.size(); }
};

} // namespace

ServeSim::ServeSim(const ChipConfig &chip, const ServeConfig &cfg)
    // Validate before any member does real work; the comma operator
    // keeps the always-on checks ahead of the field copies.
    : chip_((validateServeConfig(cfg), validateChipConfig(chip), chip)),
      cfg_(cfg), network_names_(uniqueNetworkNames(cfg)),
      tenant_network_(mapTenants(cfg, network_names_)),
      networks_(buildNetworks(network_names_)),
      table_(chip_, networks_, tablePrecisions(cfg),
             cfg.batcher.max_batch, cfg.fault)
{
}

ServeResult
ServeSim::run() const
{
    return runServeBatch({this}).front();
}

std::vector<ServeResult>
runServeBatch(const std::vector<const ServeSim *> &sims)
{
    DesEngine engine;
    std::vector<std::unique_ptr<ServeDomainCore>> doms;
    doms.reserve(sims.size());
    for (size_t i = 0; i < sims.size(); ++i) {
        RAPID_CHECK_ARG(sims[i] != nullptr,
                        "runServeBatch: null simulator at index ", i);
        const DomainId id =
            engine.addDomain("serve" + std::to_string(i));
        doms.push_back(
            std::make_unique<ServeDomainCore>(*sims[i],
                                              engine.domain(id)));
        doms.back()->start();
    }
    // No channels: the scenarios are independent, so the whole batch
    // is one fully parallel window.
    engine.run();
    std::vector<ServeResult> out;
    out.reserve(doms.size());
    for (auto &d : doms)
        out.push_back(d->finish());
    return out;
}

ServeResult
ServeSim::runReference() const
{
    // The reference loop is the executable specification of the
    // overload-off semantics; the overload features (calibrated tier,
    // breakers, brownout) exist only in the event-driven engine.
    RAPID_CHECK_ARG(!cfg_.overload.anyEnabled(),
                    "runReference models the overload-off scheduler "
                    "only; disable cfg.overload to compare");
    const std::vector<Arrival> arrivals = generateArrivals(cfg_);
    const int64_t max_batch = cfg_.batcher.max_batch;
    const int64_t max_wait = cfg_.batcher.max_wait_ns;

    ServeResult result;
    result.horizon_ns = cfg_.horizon_ns;
    result.requests.resize(arrivals.size());

    // Queue per (network, ladder position): created eagerly in a
    // deterministic order so queue ids are stable across runs.
    std::vector<Queue> queues;
    std::vector<std::vector<int>> queue_of(networks_.size());
    for (size_t n = 0; n < networks_.size(); ++n) {
        queue_of[n].assign(cfg_.ladder.size(), -1);
        for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
            Queue q;
            q.network = n;
            q.precision = cfg_.ladder[li];
            queue_of[n][li] = int(queues.size());
            queues.push_back(q);
        }
    }

    int64_t now = 0;
    int64_t busy_until = -1; ///< executor busy while now < busy_until
    size_t next_arrival = 0;
    int64_t total_depth = 0; ///< requests queued across all queues
    int64_t last_event_ns = 0;

    auto noteDepthChange = [&](int64_t t, int64_t delta) {
        result.queue_depth_integral +=
            double(total_depth) * double(t - last_event_ns);
        last_event_ns = t;
        total_depth += delta;
        result.max_queue_depth =
            std::max(result.max_queue_depth, total_depth);
    };

    // Worst-case service time of one queue holding @p extra more
    // requests than it does now: every planned batch charged at the
    // max-batch latency (monotone in size, so an upper bound).
    auto queueServiceNs = [&](const Queue &q, int64_t extra) {
        const int64_t depth = int64_t(q.depth()) + extra;
        if (depth <= 0)
            return int64_t{0};
        const int64_t batches = (depth + max_batch - 1) / max_batch;
        return batches *
               table_.latencyNs(q.network, q.precision, max_batch);
    };

    // Conservative chip backlog as seen by a request joining queue
    // @p exclude: remaining executor time plus the worst-case service
    // of every other queue (the joined queue is charged separately,
    // with the request included, so nothing is double-counted).
    auto backlogNs = [&](int64_t t, size_t exclude) {
        int64_t backlog = busy_until > t ? busy_until - t : 0;
        for (size_t qi = 0; qi < queues.size(); ++qi)
            if (qi != exclude)
                backlog += queueServiceNs(queues[qi], 0);
        return backlog;
    };

    auto admit = [&](const Arrival &a) {
        const TenantConfig &tenant = cfg_.tenants[a.tenant];
        const size_t net = tenant_network_[a.tenant];
        RequestRecord &rec = result.requests[a.id];
        rec.id = a.id;
        rec.tenant = a.tenant;
        rec.arrival_ns = a.time_ns;

        const int floor = servingQuality(tenant.min_precision);
        for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
            const Precision p = cfg_.ladder[li];
            if (servingQuality(p) < floor)
                continue;
            const size_t qi = size_t(queue_of[net][li]);
            // With a single queue this is a hard upper bound on the
            // request's latency: batches ahead of it run back to back
            // (a full queue is ready immediately), and the executor
            // idles at most once, for at most max_wait past the head's
            // arrival, before the request's own partial batch expires.
            const int64_t predicted =
                backlogNs(a.time_ns, qi) +
                queueServiceNs(queues[qi], +1) + max_wait;
            if (predicted <= tenant.deadline_ns) {
                rec.precision = p;
                rec.predicted_ns = predicted;
                rec.tier = AdmitTier::Bound;
                Queue &q = queues[qi];
                q.pending.push_back(a.id);
                noteDepthChange(a.time_ns, +1);
                return;
            }
        }
        rec.shed = true; // no ladder entry can meet the deadline
        rec.shed_reason = ShedReason::Admission;
    };

    // A queue is ready when full or its head has waited max_wait.
    auto readyQueue = [&](int64_t t) -> int {
        int best = -1;
        int64_t best_head = kNever;
        for (size_t qi = 0; qi < queues.size(); ++qi) {
            const Queue &q = queues[qi];
            if (q.empty())
                continue;
            const int64_t head_arrival =
                result.requests[q.pending[q.head]].arrival_ns;
            const bool full = int64_t(q.depth()) >= max_batch;
            const bool expired = t - head_arrival >= max_wait;
            const bool drained = next_arrival >= arrivals.size();
            if ((full || expired || drained) && head_arrival < best_head) {
                best = int(qi);
                best_head = head_arrival;
            }
        }
        return best;
    };

    auto nextTimeout = [&](int64_t t) {
        int64_t soonest = kNever;
        for (const Queue &q : queues) {
            if (q.empty())
                continue;
            const int64_t head_arrival =
                result.requests[q.pending[q.head]].arrival_ns;
            soonest = std::min(soonest, head_arrival + max_wait);
        }
        return soonest < t ? t : soonest;
    };

    auto launch = [&](int qi, int64_t t) {
        Queue &q = queues[size_t(qi)];
        const int64_t size =
            std::min<int64_t>(int64_t(q.depth()), max_batch);
        BatchRecord batch;
        batch.network = q.network;
        batch.precision = q.precision;
        batch.size = size;
        batch.launch_ns = t;
        batch.completion_ns =
            t + table_.latencyNs(q.network, q.precision, size);
        batch.energy_j = table_.energyJ(q.network, q.precision, size);
        batch.forced_by_timeout =
            size < max_batch && next_arrival < arrivals.size();
        for (int64_t i = 0; i < size; ++i) {
            RequestRecord &rec =
                result.requests[q.pending[q.head + size_t(i)]];
            rec.launch_ns = t;
            rec.completion_ns = batch.completion_ns;
        }
        q.head += size_t(size);
        if (q.empty()) {
            q.pending.clear();
            q.head = 0;
        }
        noteDepthChange(t, -size);
        busy_until = batch.completion_ns;
        result.batches.push_back(batch);
    };

    while (true) {
        // Admit every arrival at the current instant (merged order).
        while (next_arrival < arrivals.size() &&
               arrivals[next_arrival].time_ns <= now)
            admit(arrivals[next_arrival++]);

        if (now < busy_until) {
            // Executor busy: advance to its completion or the next
            // arrival, whichever the virtual clock reaches first.
            int64_t next = busy_until;
            if (next_arrival < arrivals.size())
                next = std::min(next,
                                arrivals[next_arrival].time_ns);
            now = next;
            continue;
        }

        const int ready = readyQueue(now);
        if (ready >= 0) {
            launch(ready, now);
            continue;
        }

        // Nothing ready: advance to the next arrival or head timeout.
        int64_t next = kNever;
        if (next_arrival < arrivals.size())
            next = arrivals[next_arrival].time_ns;
        next = std::min(next, nextTimeout(now));
        if (next == kNever)
            break; // drained: no arrivals left, all queues empty
        now = next;
    }

    result.end_ns = std::max(busy_until, now);
    noteDepthChange(result.end_ns, 0); // close the depth integral
    return result;
}

} // namespace rapid
