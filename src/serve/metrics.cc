#include "serve/metrics.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/table.hh"
#include "serve/queue_delay.hh"

namespace rapid {

int64_t
latencyPercentile(const std::vector<int64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    rapid_assert(q >= 0.0 && q <= 1.0, "percentile ", q,
                 " outside [0,1]");
    const double rank = std::ceil(q * double(sorted.size()));
    size_t idx = rank < 1.0 ? 0 : size_t(rank) - 1;
    idx = std::min(idx, sorted.size() - 1);
    return sorted[idx];
}

LatencyStats
summarizeLatencies(const std::vector<int64_t> &sorted)
{
    LatencyStats s;
    s.count = sorted.size();
    if (sorted.empty())
        return s;
    s.p50 = latencyPercentile(sorted, 0.50);
    s.p95 = latencyPercentile(sorted, 0.95);
    s.p99 = latencyPercentile(sorted, 0.99);
    s.p999 = latencyPercentile(sorted, 0.999);
    s.max = sorted.back();
    double sum = 0;
    for (int64_t v : sorted)
        sum += double(v);
    s.mean = sum / double(sorted.size());
    return s;
}

namespace {

void
countPrecision(TenantMetrics &m, Precision p)
{
    if (p == Precision::INT4 || p == Precision::INT2)
        ++m.served_int4;
    else if (p == Precision::HFP8)
        ++m.served_hfp8;
    else
        ++m.served_fp16;
}

void
finishTenant(TenantMetrics &m, std::vector<int64_t> &latencies,
             int64_t horizon_ns)
{
    std::sort(latencies.begin(), latencies.end());
    m.latency = summarizeLatencies(latencies);
    const double horizon_s = double(horizon_ns) * 1e-9;
    m.goodput_rps = double(m.sla_met) / horizon_s;
    m.offered_rps = double(m.offered) / horizon_s;
}

} // namespace

ServeMetrics
computeMetrics(const ServeConfig &cfg, const ServeResult &result)
{
    ServeMetrics out;
    out.tenants.resize(cfg.tenants.size());
    for (size_t ti = 0; ti < cfg.tenants.size(); ++ti)
        out.tenants[ti].name = cfg.tenants[ti].name;
    out.total.name = "total";

    std::vector<std::vector<int64_t>> lat(cfg.tenants.size());
    std::vector<int64_t> lat_all;
    for (const RequestRecord &r : result.requests) {
        TenantMetrics &m = out.tenants[r.tenant];
        ++m.offered;
        ++out.total.offered;
        if (r.failed) {
            ++m.failed;
            ++out.total.failed;
            continue;
        }
        if (r.shed) {
            ++m.shed;
            ++out.total.shed;
            if (r.shed_reason == ShedReason::Brownout) {
                ++m.shed_brownout;
                ++out.total.shed_brownout;
            } else {
                ++m.shed_admission;
                ++out.total.shed_admission;
            }
            continue;
        }
        ++m.completed;
        ++out.total.completed;
        if (r.tier == AdmitTier::Calibrated) {
            ++m.admitted_calibrated;
            ++out.total.admitted_calibrated;
        } else {
            ++m.admitted_bound;
            ++out.total.admitted_bound;
        }
        countPrecision(m, r.precision);
        countPrecision(out.total, r.precision);
        const int64_t l = r.latencyNs();
        lat[r.tenant].push_back(l);
        lat_all.push_back(l);
        if (l <= cfg.tenants[r.tenant].deadline_ns) {
            ++m.sla_met;
            ++out.total.sla_met;
        } else {
            ++m.violations;
            ++out.total.violations;
        }
    }
    for (size_t ti = 0; ti < cfg.tenants.size(); ++ti)
        finishTenant(out.tenants[ti], lat[ti], result.horizon_ns);
    finishTenant(out.total, lat_all, result.horizon_ns);

    for (const BatchRecord &b : result.batches) {
        out.energy_j += b.energy_j;
        out.mean_batch_size += double(b.size);
    }
    out.batches = result.batches.size();
    if (out.batches > 0)
        out.mean_batch_size /= double(out.batches);
    if (out.total.completed > 0)
        out.energy_per_request_mj =
            1e3 * out.energy_j / double(out.total.completed);
    const int64_t span =
        result.end_ns > 0 ? result.end_ns : result.horizon_ns;
    out.mean_queue_depth =
        span > 0 ? result.queue_depth_integral / double(span) : 0.0;
    out.max_queue_depth = result.max_queue_depth;

    // Observed queue-delay slice: replay each completed request's
    // wait into its (network, precision) queue's history-window
    // estimator, in completion (launch) order so the window holds the
    // most recent waits, and report the window stats beside the
    // proven admission bounds on the same requests.
    struct QueueAccum
    {
        QueueDelayEstimator est;
        double bound_sum = 0;
        int64_t bound_max = 0;
        uint64_t samples = 0;
    };
    std::map<std::pair<std::string, int>, QueueAccum> queues;
    std::vector<const RequestRecord *> done;
    for (const RequestRecord &r : result.requests)
        if (!r.shed && !r.failed)
            done.push_back(&r);
    std::stable_sort(done.begin(), done.end(),
                     [](const RequestRecord *a, const RequestRecord *b) {
                         return a->launch_ns < b->launch_ns;
                     });
    for (const RequestRecord *r : done) {
        QueueAccum &q = queues[{cfg.tenants[r->tenant].network,
                                int(r->precision)}];
        q.est.record(r->queueWaitNs());
        q.bound_sum += double(r->predicted_ns);
        q.bound_max = std::max(q.bound_max, r->predicted_ns);
        ++q.samples;
    }
    for (const auto &[key, q] : queues) {
        QueueWaitMetrics w;
        w.network = key.first;
        w.precision = Precision(key.second);
        w.samples = q.samples;
        w.observed_mean_ns = q.est.meanNs();
        w.observed_p95_ns = q.est.p95Ns();
        w.bound_mean_ns = int64_t(q.bound_sum / double(q.samples));
        w.bound_max_ns = q.bound_max;
        out.queue_waits.push_back(w);
    }

    out.overload_active = cfg.overload.anyEnabled();
    for (const QueueOverloadStats &qs : result.queue_overload) {
        if (qs.fuse_tripped)
            ++out.fuse_trips;
        out.breaker_opens += qs.breaker_opens;
        out.breaker_closes += qs.breaker_closes;
    }
    for (const BrownoutTransition &tr : result.brownout_transitions)
        out.brownout_max_level =
            std::max(out.brownout_max_level, tr.level);
    out.brownout_transitions = result.brownout_transitions.size();
    return out;
}

namespace {

std::string
ms(int64_t ns)
{
    return Table::fmt(double(ns) * 1e-6, 3);
}

std::string
pctOf(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "-";
    return Table::fmt(100.0 * double(part) / double(whole), 1) + "%";
}

} // namespace

std::string
serveReport(const ServeMetrics &m)
{
    Table t({"Tenant", "Offered/s", "Goodput/s", "Shed", "Viol",
             "p50 ms", "p95 ms", "p99 ms", "p99.9 ms", "INT4", "HFP8",
             "FP16"});
    auto row = [&](const TenantMetrics &tm) {
        t.addRow({tm.name, Table::fmt(tm.offered_rps, 1),
                  Table::fmt(tm.goodput_rps, 1),
                  pctOf(tm.shed, tm.offered),
                  pctOf(tm.violations, tm.offered),
                  ms(tm.latency.p50), ms(tm.latency.p95),
                  ms(tm.latency.p99), ms(tm.latency.p999),
                  pctOf(tm.served_int4, tm.completed),
                  pctOf(tm.served_hfp8, tm.completed),
                  pctOf(tm.served_fp16, tm.completed)});
    };
    for (const TenantMetrics &tm : m.tenants)
        row(tm);
    row(m.total);

    std::ostringstream oss;
    oss << t.str();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "batches %llu (mean size %.2f), queue depth mean "
                  "%.2f max %lld, %.3f mJ/request\n",
                  (unsigned long long)m.batches, m.mean_batch_size,
                  m.mean_queue_depth, (long long)m.max_queue_depth,
                  m.energy_per_request_mj);
    oss << buf;
    if (m.overload_active) {
        std::snprintf(
            buf, sizeof(buf),
            "overload: admits calibrated %llu / bound %llu, shed "
            "admission %llu brownout %llu, fuse trips %llu, breaker "
            "opens %llu closes %llu, brownout max level %d\n",
            (unsigned long long)m.total.admitted_calibrated,
            (unsigned long long)m.total.admitted_bound,
            (unsigned long long)m.total.shed_admission,
            (unsigned long long)m.total.shed_brownout,
            (unsigned long long)m.fuse_trips,
            (unsigned long long)m.breaker_opens,
            (unsigned long long)m.breaker_closes,
            m.brownout_max_level);
        oss << buf;
    }
    return oss.str();
}

std::string
serveJsonRecord(const std::string &section, const std::string &policy,
                const ServeMetrics &m)
{
    std::ostringstream oss;
    oss << "{\"section\":\"" << section << "\",\"policy\":\"" << policy
        << "\",\"offered_rps\":" << Table::fmt(m.total.offered_rps, 3)
        << ",\"goodput_rps\":" << Table::fmt(m.total.goodput_rps, 3)
        << ",\"offered\":" << m.total.offered
        << ",\"completed\":" << m.total.completed
        << ",\"shed\":" << m.total.shed
        << ",\"failed\":" << m.total.failed
        << ",\"violations\":" << m.total.violations
        << ",\"admitted_calibrated\":" << m.total.admitted_calibrated
        << ",\"admitted_bound\":" << m.total.admitted_bound
        << ",\"shed_admission\":" << m.total.shed_admission
        << ",\"shed_brownout\":" << m.total.shed_brownout
        << ",\"fuse_trips\":" << m.fuse_trips
        << ",\"breaker_opens\":" << m.breaker_opens
        << ",\"breaker_closes\":" << m.breaker_closes
        << ",\"brownout_max_level\":" << m.brownout_max_level
        << ",\"tier_closed\":"
        << (m.total.tierAccountingClosed() ? "true" : "false")
        << ",\"p50_ms\":" << ms(m.total.latency.p50)
        << ",\"p99_ms\":" << ms(m.total.latency.p99)
        << ",\"p999_ms\":" << ms(m.total.latency.p999)
        << ",\"energy_per_request_mj\":"
        << Table::fmt(m.energy_per_request_mj, 4)
        << ",\"mean_batch\":" << Table::fmt(m.mean_batch_size, 3)
        << "}";
    return oss.str();
}

} // namespace rapid
