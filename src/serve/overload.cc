#include "serve/overload.hh"

#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"

namespace rapid {

const char *
admitTierName(AdmitTier tier)
{
    switch (tier) {
      case AdmitTier::Bound: return "bound";
      case AdmitTier::Calibrated: return "calibrated";
    }
    return "?";
}

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
      case ShedReason::None: return "none";
      case ShedReason::Admission: return "admission";
      case ShedReason::Brownout: return "brownout";
    }
    return "?";
}

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half-open";
    }
    return "?";
}

void
validateCalibratedAdmissionConfig(const CalibratedAdmissionConfig &cfg)
{
    RAPID_CHECK_CONFIG(cfg.window > 0,
                       "calibrated admission: window must be > 0, got ",
                       cfg.window);
    RAPID_CHECK_CONFIG(cfg.min_samples >= 1 &&
                           cfg.min_samples <= cfg.window,
                       "calibrated admission: min_samples must be in "
                       "[1, window], got ",
                       cfg.min_samples, " with window ", cfg.window);
    RAPID_CHECK_CONFIG(std::isfinite(cfg.safety_margin) &&
                           cfg.safety_margin >= 1.0,
                       "calibrated admission: safety_margin must be "
                       ">= 1, got ",
                       cfg.safety_margin);
    RAPID_CHECK_CONFIG(cfg.fuse_violations >= 1,
                       "calibrated admission: fuse_violations must be "
                       ">= 1, got ",
                       cfg.fuse_violations);
}

void
validateOverloadConfig(const OverloadConfig &cfg)
{
    validateCalibratedAdmissionConfig(cfg.admission);
    RAPID_CHECK_CONFIG(cfg.breaker.depth_open >= 1,
                       "circuit breaker: depth_open must be >= 1, got ",
                       cfg.breaker.depth_open);
    RAPID_CHECK_CONFIG(cfg.breaker.violations_open >= 1,
                       "circuit breaker: violations_open must be >= 1, "
                       "got ",
                       cfg.breaker.violations_open);
    RAPID_CHECK_CONFIG(cfg.breaker.open_ns > 0,
                       "circuit breaker: open_ns must be positive, "
                       "got ",
                       cfg.breaker.open_ns);
    RAPID_CHECK_CONFIG(cfg.breaker.probe_count >= 1,
                       "circuit breaker: probe_count must be >= 1, "
                       "got ",
                       cfg.breaker.probe_count);
    RAPID_CHECK_CONFIG(cfg.brownout.depth_low >= 0,
                       "brownout: depth_low must be >= 0, got ",
                       cfg.brownout.depth_low);
    RAPID_CHECK_CONFIG(cfg.brownout.depth_high > cfg.brownout.depth_low,
                       "brownout: depth_high must exceed depth_low, "
                       "got high ",
                       cfg.brownout.depth_high, " low ",
                       cfg.brownout.depth_low);
    RAPID_CHECK_CONFIG(cfg.brownout.escalate_ns > 0,
                       "brownout: escalate_ns must be positive, got ",
                       cfg.brownout.escalate_ns);
    RAPID_CHECK_CONFIG(cfg.brownout.recover_ns > 0,
                       "brownout: recover_ns must be positive, got ",
                       cfg.brownout.recover_ns);
}

CircuitBreaker::CircuitBreaker(const BreakerConfig &cfg) : cfg_(cfg) {}

void
CircuitBreaker::transition(int64_t now, BreakerState next)
{
    rapid_dassert(next != state_, "breaker self-transition");
    state_ = next;
    switch (next) {
      case BreakerState::Open:
        ++opens_;
        opened_at_ = now;
        consecutive_violations_ = 0;
        break;
      case BreakerState::HalfOpen:
        probes_started_ = 0;
        probe_successes_ = 0;
        break;
      case BreakerState::Closed:
        ++closes_;
        consecutive_violations_ = 0;
        break;
    }
}

bool
CircuitBreaker::allowAdmit(int64_t now)
{
    if (!cfg_.enabled)
        return true;
    if (state_ == BreakerState::Open &&
        now - opened_at_ >= cfg_.open_ns)
        transition(now, BreakerState::HalfOpen);
    switch (state_) {
      case BreakerState::Closed: return true;
      case BreakerState::Open: return false;
      case BreakerState::HalfOpen:
        return probes_started_ < cfg_.probe_count;
    }
    return true;
}

bool
CircuitBreaker::onAdmit(int64_t now)
{
    (void)now;
    if (!cfg_.enabled || state_ != BreakerState::HalfOpen)
        return false;
    ++probes_started_;
    return true;
}

void
CircuitBreaker::onDepth(int64_t now, int64_t depth)
{
    if (!cfg_.enabled || state_ != BreakerState::Closed)
        return;
    if (depth >= cfg_.depth_open)
        transition(now, BreakerState::Open);
}

void
CircuitBreaker::onOutcome(int64_t now, bool violation, bool probe)
{
    if (!cfg_.enabled)
        return;
    if (probe) {
        // A probe outcome settles the half-open question no matter
        // what state interleaved admissions moved us to.
        if (violation) {
            if (state_ != BreakerState::Open)
                transition(now, BreakerState::Open);
        } else if (state_ == BreakerState::HalfOpen &&
                   ++probe_successes_ >= cfg_.probe_count) {
            transition(now, BreakerState::Closed);
        }
        return;
    }
    // Outcomes of pre-open admissions only matter while Closed: they
    // feed the consecutive-violation trigger.
    if (state_ != BreakerState::Closed)
        return;
    consecutive_violations_ =
        violation ? consecutive_violations_ + 1 : 0;
    if (consecutive_violations_ >= cfg_.violations_open)
        transition(now, BreakerState::Open);
}

BrownoutController::BrownoutController(const BrownoutConfig &cfg,
                                       int max_level)
    : cfg_(cfg), max_level_(max_level)
{
    rapid_dassert(max_level >= 0, "negative brownout ladder");
}

void
BrownoutController::advanceTo(int64_t now)
{
    // Settle every dwell that completed before @p now: each level
    // change is stamped at the exact instant its dwell elapsed, and
    // the next dwell starts there, so multi-level escalation across a
    // long event gap lands on the same timestamps a continuous
    // observer would record.
    while (high_since_ >= 0 && level_ < max_level_ &&
           now - high_since_ >= cfg_.escalate_ns) {
        high_since_ += cfg_.escalate_ns;
        ++level_;
        transitions_.push_back({high_since_, level_});
    }
    while (low_since_ >= 0 && level_ > 0 &&
           now - low_since_ >= cfg_.recover_ns) {
        low_since_ += cfg_.recover_ns;
        --level_;
        transitions_.push_back({low_since_, level_});
    }
}

void
BrownoutController::observe(int64_t now, int64_t depth)
{
    if (!cfg_.enabled)
        return;
    advanceTo(now);
    if (depth >= cfg_.depth_high) {
        if (high_since_ < 0)
            high_since_ = now;
        low_since_ = -1;
    } else if (depth <= cfg_.depth_low) {
        if (low_since_ < 0)
            low_since_ = now;
        high_since_ = -1;
    } else {
        // Hysteresis middle band: hold the current level.
        high_since_ = -1;
        low_since_ = -1;
    }
}

int
BrownoutController::level(int64_t now)
{
    if (!cfg_.enabled)
        return 0;
    advanceTo(now);
    return level_;
}

} // namespace rapid
