#include "serve/workload.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace rapid {

namespace {

/** Exponential(rate per second) gap in integer nanoseconds, >= 1. */
int64_t
expGapNs(Rng &rng, double rate_per_s)
{
    const double u = rng.uniform();
    const double gap_s = -std::log1p(-u) / rate_per_s;
    const double gap_ns = std::ceil(gap_s * 1e9);
    if (gap_ns < 1.0)
        return 1;
    if (gap_ns > 9e18)
        return int64_t(9e18);
    return int64_t(gap_ns);
}

/** Geometric draw with the given mean (>= 1), support {1, 2, ...}. */
int64_t
geometricSize(Rng &rng, double mean)
{
    if (mean <= 1.0)
        return 1;
    // P(size > k) = (1 - 1/mean)^k
    const double q = 1.0 - 1.0 / mean;
    const double u = rng.uniform();
    const double k = std::floor(std::log1p(-u) / std::log(q));
    if (!(k >= 0.0))
        return 1;
    if (k > 4096.0) // clamp pathological tails; keeps traces bounded
        return 4097;
    return 1 + int64_t(k);
}

} // namespace

std::vector<int64_t>
tenantArrivalTimes(const TenantConfig &tenant, unsigned tenant_index,
                   int64_t horizon_ns, uint64_t seed)
{
    rapid_assert(horizon_ns > 0, "non-positive workload horizon");
    Rng rng(mixSeed(seed, tenant_index));
    std::vector<int64_t> times;
    if (tenant.pattern == ArrivalPattern::Poisson) {
        int64_t t = expGapNs(rng, tenant.arrival_rps);
        while (t < horizon_ns) {
            times.push_back(t);
            t += expGapNs(rng, tenant.arrival_rps);
        }
        return times;
    }
    // Bursty: epochs arrive at rate/burst_mean; each epoch carries a
    // geometric(burst_mean) group of coincident requests, so the
    // average offered load stays arrival_rps.
    const double mean = std::max(1.0, tenant.burst_mean);
    const double epoch_rate = tenant.arrival_rps / mean;
    int64_t t = expGapNs(rng, epoch_rate);
    while (t < horizon_ns) {
        const int64_t burst = geometricSize(rng, mean);
        for (int64_t i = 0; i < burst; ++i)
            times.push_back(t);
        t += expGapNs(rng, epoch_rate);
    }
    return times;
}

std::vector<Arrival>
generateArrivals(const ServeConfig &cfg)
{
    std::vector<Arrival> merged;
    for (unsigned ti = 0; ti < cfg.tenants.size(); ++ti) {
        const std::vector<int64_t> times = tenantArrivalTimes(
            cfg.tenants[ti], ti, cfg.horizon_ns, cfg.seed);
        merged.reserve(merged.size() + times.size());
        for (int64_t t : times)
            merged.push_back(Arrival{t, ti, 0});
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Arrival &a, const Arrival &b) {
                         if (a.time_ns != b.time_ns)
                             return a.time_ns < b.time_ns;
                         return a.tenant < b.tenant;
                     });
    for (size_t i = 0; i < merged.size(); ++i)
        merged[i].id = i;
    return merged;
}

} // namespace rapid
