/**
 * @file
 * Configuration of the multi-tenant serving simulator (`rapid_serve`):
 * per-tenant traffic and SLA descriptions, dynamic-batcher knobs, and
 * the precision ladder the SLA router may draw from.
 *
 * Determinism contract: the simulator runs on a virtual clock in
 * nanoseconds derived from PerfModel cycle counts — never wall time —
 * and every random decision derives from (seed, tenant) streams via
 * mixSeed, so a run is bit-identical across processes and at any
 * --threads N.
 */

#ifndef RAPID_SERVE_SERVE_CONFIG_HH
#define RAPID_SERVE_SERVE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "precision/precision.hh"
#include "serve/overload.hh"

namespace rapid {

/** Shape of a tenant's open-loop arrival process. */
enum class ArrivalPattern
{
    Poisson, ///< exponential inter-arrival times
    Bursty,  ///< Poisson burst epochs, geometric burst sizes
};

const char *arrivalPatternName(ArrivalPattern pattern);

/** One tenant: a traffic stream against one network with one SLA. */
struct TenantConfig
{
    std::string name;
    /// Benchmark network served to this tenant (benchmarkByName).
    std::string network = "resnet50";
    /// Offered load in requests per second (open loop: arrivals do
    /// not slow down when the server falls behind).
    double arrival_rps = 1000.0;
    ArrivalPattern pattern = ArrivalPattern::Poisson;
    /// Mean burst size (requests per burst epoch) when Bursty.
    double burst_mean = 8.0;
    /// Per-request deadline: arrival-to-completion budget.
    int64_t deadline_ns = 10'000'000;
    /// Quality floor: the router never serves this tenant below this
    /// precision (INT4 accepts the full ladder, FP16 pins DLFloat16).
    Precision min_precision = Precision::INT4;
    /// Brownout priority class (>= 0, higher = more important). The
    /// brownout ladder's shedding rungs drop the lowest class first
    /// and never shed the highest class present in the scenario.
    int priority = 1;
};

/** Dynamic batcher knobs, shared by every (network, precision) queue. */
struct BatcherConfig
{
    /// Largest coalesced batch; also the batch the router's latency
    /// prediction conservatively assumes.
    int64_t max_batch = 8;
    /// Longest a queue head may wait for co-batching before the batch
    /// is forced out (executor permitting).
    int64_t max_wait_ns = 2'000'000;
};

/** A full serving scenario. A tenant with arrival_rps == 0 offers no
 *  local traffic but still shapes the latency table and queue set —
 *  fleet shards use this to replicate every tenant's model on every
 *  chip while arrivals stay partitioned by home chip. */
struct ServeConfig
{
    std::vector<TenantConfig> tenants;
    BatcherConfig batcher;
    /// Precisions the router may choose from, cheapest first. The
    /// router walks this ladder and picks the first entry at or above
    /// the tenant's quality floor whose predicted latency meets the
    /// deadline; if none does, the request is shed at admission.
    std::vector<Precision> ladder{Precision::INT4, Precision::HFP8,
                                  Precision::FP16};
    /// Open-loop generation horizon on the virtual clock; queued work
    /// drains to completion past it.
    int64_t horizon_ns = 1'000'000'000;
    /// Root seed of every per-tenant arrival stream.
    uint64_t seed = 0x5e77eULL;
    /// Fault scenario charged into the latency table via PerfModel:
    /// detected-uncorrected faults lengthen batch latencies through
    /// CycleBreakdown::retry and so surface in the serving tails.
    FaultConfig fault;
    /// Overload control: calibrated admission tier, circuit breakers,
    /// brownout ladder. Defaults off — a default OverloadConfig runs
    /// bit-identical to the pre-overload scheduler, and runReference()
    /// (the executable spec) covers only overload-off scenarios.
    OverloadConfig overload;
};

/**
 * Serving-quality rank of a precision (higher = better fidelity):
 * FP16 > HFP8 > INT4 > INT2. FP32 is not a servable MPE mode.
 */
int servingQuality(Precision p);

/**
 * Throw rapid::Error (InvalidArgument / InvalidConfig) on a
 * non-runnable scenario: no tenants, non-positive rates/deadlines/
 * horizon, empty or FP32-bearing ladder, zero max_batch, negative
 * max_wait, bad fault knobs. Runs in every build type.
 */
void validateServeConfig(const ServeConfig &cfg);

/**
 * The precisions a chip's latency table must cover for @p cfg: the
 * router ladder plus every tenant quality floor, deduplicated in
 * first-appearance order.
 */
std::vector<Precision> tablePrecisions(const ServeConfig &cfg);

} // namespace rapid

#endif // RAPID_SERVE_SERVE_CONFIG_HH
