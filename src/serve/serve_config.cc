#include "serve/serve_config.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace rapid {

const char *
arrivalPatternName(ArrivalPattern pattern)
{
    switch (pattern) {
      case ArrivalPattern::Poisson: return "poisson";
      case ArrivalPattern::Bursty: return "bursty";
    }
    return "?";
}

int
servingQuality(Precision p)
{
    switch (p) {
      case Precision::FP32: return -1; // SFU-only, not servable
      case Precision::FP16: return 3;
      case Precision::HFP8: return 2;
      case Precision::INT4: return 1;
      case Precision::INT2: return 0;
    }
    return -1;
}

void
validateServeConfig(const ServeConfig &cfg)
{
    RAPID_CHECK_ARG(!cfg.tenants.empty(),
                    "a serving scenario needs at least one tenant");
    for (const TenantConfig &t : cfg.tenants) {
        RAPID_CHECK_ARG(!t.name.empty(), "tenant name must be set");
        RAPID_CHECK_ARG(std::isfinite(t.arrival_rps) &&
                            t.arrival_rps >= 0.0,
                        "tenant '", t.name,
                        "': arrival_rps must be >= 0, got ",
                        t.arrival_rps);
        RAPID_CHECK_ARG(t.deadline_ns > 0, "tenant '", t.name,
                        "': deadline_ns must be positive, got ",
                        t.deadline_ns);
        RAPID_CHECK_ARG(t.pattern != ArrivalPattern::Bursty ||
                            (std::isfinite(t.burst_mean) &&
                             t.burst_mean >= 1.0),
                        "tenant '", t.name,
                        "': bursty traffic needs burst_mean >= 1, got ",
                        t.burst_mean);
        RAPID_CHECK_ARG(servingQuality(t.min_precision) >= 0,
                        "tenant '", t.name, "': quality floor ",
                        precisionName(t.min_precision),
                        " is not a servable MPE precision");
        RAPID_CHECK_ARG(t.priority >= 0, "tenant '", t.name,
                        "': priority must be >= 0, got ", t.priority);
    }
    RAPID_CHECK_ARG(cfg.batcher.max_batch >= 1,
                    "batcher max_batch must be >= 1, got ",
                    cfg.batcher.max_batch);
    RAPID_CHECK_ARG(cfg.batcher.max_wait_ns >= 0,
                    "batcher max_wait_ns must be >= 0, got ",
                    cfg.batcher.max_wait_ns);
    RAPID_CHECK_ARG(!cfg.ladder.empty(),
                    "the router's precision ladder must not be empty");
    for (Precision p : cfg.ladder)
        RAPID_CHECK_ARG(servingQuality(p) >= 0, "ladder precision ",
                        precisionName(p),
                        " is not a servable MPE precision");
    RAPID_CHECK_ARG(cfg.horizon_ns > 0,
                    "horizon_ns must be positive, got ", cfg.horizon_ns);
    validateFaultConfig(cfg.fault);
    validateOverloadConfig(cfg.overload);
}

std::vector<Precision>
tablePrecisions(const ServeConfig &cfg)
{
    std::vector<Precision> precs = cfg.ladder;
    for (const TenantConfig &t : cfg.tenants)
        if (std::find(precs.begin(), precs.end(), t.min_precision) ==
            precs.end())
            precs.push_back(t.min_precision);
    return precs;
}

} // namespace rapid
