/**
 * @file
 * Overload-control primitives for the serving stack (ROADMAP item 5,
 * closing slice): the calibrated admission tier, the per-queue
 * circuit breaker, and the tenant-priority brownout ladder. All three
 * are pure, allocation-light state machines driven exclusively by the
 * virtual clock, so the schedulers that host them stay bit-identical
 * at any --threads N.
 *
 * Calibrated admission tier: the SLA router normally admits against a
 * *proven worst-case* bound (backlog + one batching wait + a
 * max-batch execution), which over-sheds ~20% of feasible load at the
 * multi-tenant knee. Once a queue's QueueDelayEstimator window holds
 * at least min_samples observed waits, the router may instead admit
 * on observed p95 wait x safety_margin plus one batch execution — the
 * calibrated tier. A *trust fuse* guards the shortcut: the moment a
 * calibrated-admitted request misses its SLA (fuse_violations
 * strikes), the queue latches back to the proven bound for the rest
 * of the run. Every request records which tier admitted (or which
 * reason shed) it, so the accounting
 * offered == admitted_calibrated + admitted_bound + shed_* closes.
 *
 * Circuit breaker (per (network, precision) queue):
 *
 *     Closed --(depth >= depth_open, or violations_open consecutive
 *               SLA violations)--> Open
 *     Open --(open_ns cooldown elapsed)--> HalfOpen
 *     HalfOpen: up to probe_count admissions pass as probes;
 *       any probe violating  --> Open (fresh cooldown)
 *       probe_count probes OK --> Closed
 *
 * An open breaker makes the router skip that ladder entry, so traffic
 * either degrades to another rung or sheds fast instead of piling
 * onto a queue that is already missing deadlines.
 *
 * Brownout ladder: under sustained overload (total queued depth at or
 * above depth_high for escalate_ns per rung) the controller escalates
 * one level at a time. The first (ladder size - 1) levels cap the
 * precision ladder from the expensive end — quality degrades, nobody
 * sheds, and tenant quality floors are always preserved. Only past
 * the last precision rung do the shedding levels engage, dropping
 * tenants from the lowest priority class upward; the highest class is
 * never brownout-shed. Recovery walks the same ladder down after
 * recover_ns of depth at or below depth_low per rung. Precision
 * always degrades before anyone sheds — never the reverse — by
 * construction of the level order.
 */

#ifndef RAPID_SERVE_OVERLOAD_HH
#define RAPID_SERVE_OVERLOAD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "precision/precision.hh"

namespace rapid {

/** Which admission tier accepted a request. */
enum class AdmitTier : uint8_t
{
    Bound = 0,      ///< proven worst-case bound (always safe)
    Calibrated = 1, ///< observed-p95 shortcut (fuse-guarded)
};

const char *admitTierName(AdmitTier tier);

/** Why a request was shed (None while admitted). */
enum class ShedReason : uint8_t
{
    None = 0,      ///< not shed
    Admission = 1, ///< no ladder entry met the deadline
    Brownout = 2,  ///< dropped by a brownout shedding rung
};

const char *shedReasonName(ShedReason reason);

/** Calibrated admission tier knobs (serve router and llm batcher). */
struct CalibratedAdmissionConfig
{
    bool enabled = false;
    /// History window of the per-queue wait estimator.
    size_t window = 256;
    /// Observations required before the calibrated tier is trusted;
    /// below this the router admits on the proven bound.
    size_t min_samples = 32;
    /// Multiplier on the observed p95 before comparing against the
    /// deadline (>= 1: calibrated never admits looser than observed).
    double safety_margin = 2.0;
    /// Trip back to the proven bound once a calibrated admit misses
    /// its SLA (the trust fuse); latched for the rest of the run.
    bool fuse_enabled = true;
    /// Calibrated SLA violations on one queue that trip its fuse.
    int64_t fuse_violations = 1;
};

/** Throw InvalidConfig on non-runnable calibrated-admission knobs. */
void validateCalibratedAdmissionConfig(
    const CalibratedAdmissionConfig &cfg);

/** Circuit-breaker state (see file comment for the machine). */
enum class BreakerState : uint8_t
{
    Closed = 0,
    Open = 1,
    HalfOpen = 2,
};

const char *breakerStateName(BreakerState state);

/** Per-queue circuit-breaker knobs. */
struct BreakerConfig
{
    bool enabled = false;
    /// Queue depth at admission that opens the breaker.
    int64_t depth_open = 64;
    /// Consecutive SLA violations (batch completions) that open it.
    int64_t violations_open = 4;
    /// Cooldown before an open breaker admits half-open probes.
    int64_t open_ns = 50'000'000;
    /// Probes that must all complete within SLA to re-close.
    int64_t probe_count = 4;
};

/**
 * The breaker state machine, one instance per (network, precision)
 * queue. Driven entirely by virtual-clock instants passed in by the
 * caller; never reads a clock itself.
 */
class CircuitBreaker
{
  public:
    explicit CircuitBreaker(const BreakerConfig &cfg);

    /** May this queue admit at @p now? Advances Open -> HalfOpen when
     *  the cooldown has elapsed. */
    bool allowAdmit(int64_t now);

    /** Note an admission granted by allowAdmit; returns true when the
     *  request is a half-open probe (its outcome decides re-close). */
    bool onAdmit(int64_t now);

    /** Queue depth observed after an admission (depth trigger). */
    void onDepth(int64_t now, int64_t depth);

    /** A request of this queue completed; @p violation is its SLA
     *  outcome, @p probe the flag onAdmit returned for it. */
    void onOutcome(int64_t now, bool violation, bool probe);

    BreakerState state() const { return state_; }
    uint64_t opens() const { return opens_; }
    uint64_t closes() const { return closes_; }

  private:
    void transition(int64_t now, BreakerState next);

    BreakerConfig cfg_;
    BreakerState state_ = BreakerState::Closed;
    int64_t opened_at_ = 0;
    int64_t consecutive_violations_ = 0;
    int64_t probes_started_ = 0;
    int64_t probe_successes_ = 0;
    uint64_t opens_ = 0;
    uint64_t closes_ = 0;
};

/** Brownout ladder knobs. */
struct BrownoutConfig
{
    bool enabled = false;
    /// Total queued depth that counts as overload pressure.
    int64_t depth_high = 64;
    /// Depth at or below which the controller may recover.
    int64_t depth_low = 8;
    /// Sustained-high dwell per escalation level.
    int64_t escalate_ns = 20'000'000;
    /// Sustained-low dwell per recovery level.
    int64_t recover_ns = 50'000'000;
};

/** One brownout level change, for the ordering-invariant tests. */
struct BrownoutTransition
{
    int64_t time_ns = 0;
    int level = 0; ///< level after the transition
};

/**
 * Hysteresis controller for the brownout level. observe() feeds every
 * total-depth change; level() settles any dwell that elapsed since
 * and returns the current rung. Transitions are timestamped at the
 * exact virtual instant the dwell completed (not at the query), so
 * the trace is independent of event granularity.
 */
class BrownoutController
{
  public:
    /** @p max_level = precision rungs + shedding rungs. */
    BrownoutController(const BrownoutConfig &cfg, int max_level);

    /** Record a depth change at @p now (monotone non-decreasing). */
    void observe(int64_t now, int64_t depth);

    /** Current level at @p now (settles elapsed dwell first). */
    int level(int64_t now);

    const std::vector<BrownoutTransition> &transitions() const
    {
        return transitions_;
    }

  private:
    void advanceTo(int64_t now);

    BrownoutConfig cfg_;
    int max_level_ = 0;
    int level_ = 0;
    int64_t high_since_ = -1; ///< -1: not in the high band
    int64_t low_since_ = -1;  ///< -1: not in the low band
    std::vector<BrownoutTransition> transitions_;
};

/** All overload-control knobs of one serving scenario. Everything
 *  defaults off: a default OverloadConfig is bit-identical to the
 *  pre-overload scheduler. */
struct OverloadConfig
{
    CalibratedAdmissionConfig admission;
    BreakerConfig breaker;
    BrownoutConfig brownout;

    bool anyEnabled() const
    {
        return admission.enabled || breaker.enabled || brownout.enabled;
    }
};

/** Throw InvalidConfig on non-runnable overload knobs. */
void validateOverloadConfig(const OverloadConfig &cfg);

/** Per-queue overload-control outcome, reported in ServeResult. */
struct QueueOverloadStats
{
    size_t network = 0;
    Precision precision = Precision::INT4;
    uint64_t admitted_calibrated = 0;
    uint64_t admitted_bound = 0;
    bool fuse_tripped = false;
    int64_t fuse_trip_ns = -1;
    uint64_t breaker_opens = 0;
    uint64_t breaker_closes = 0;
};

} // namespace rapid

#endif // RAPID_SERVE_OVERLOAD_HH
