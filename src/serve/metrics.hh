/**
 * @file
 * Aggregation of a ServeResult into serving metrics — tail latency
 * percentiles, goodput vs offered load, shed/violation accounting,
 * queue depth, energy per request — plus stable text rendering for
 * the golden-diffed bench and one-line JSON records for
 * BENCH_serve.json.
 */

#ifndef RAPID_SERVE_METRICS_HH
#define RAPID_SERVE_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server_sim.hh"

namespace rapid {

/** Latency distribution summary in nanoseconds. */
struct LatencyStats
{
    uint64_t count = 0;
    int64_t p50 = 0;
    int64_t p95 = 0;
    int64_t p99 = 0;
    int64_t p999 = 0;
    int64_t max = 0;
    double mean = 0;
};

/**
 * Exact empirical percentile (nearest-rank) of @p sorted latencies;
 * 0 when empty. @p q in [0, 1].
 */
int64_t latencyPercentile(const std::vector<int64_t> &sorted, double q);

/** Summarize a sorted latency vector. */
LatencyStats summarizeLatencies(const std::vector<int64_t> &sorted);

/** Per-tenant (or aggregate) serving outcome. */
struct TenantMetrics
{
    std::string name;
    uint64_t offered = 0;   ///< requests generated
    uint64_t completed = 0; ///< requests served to completion
    uint64_t shed = 0;      ///< rejected at admission
    uint64_t failed = 0;    ///< stranded by a chip failure
    uint64_t sla_met = 0;   ///< completed within deadline
    uint64_t violations = 0; ///< completed after deadline
    LatencyStats latency;   ///< over completed requests
    /// Completed-in-deadline requests per second of offered horizon.
    double goodput_rps = 0;
    double offered_rps = 0;
    /// Requests served at each ladder-quality precision.
    uint64_t served_int4 = 0;
    uint64_t served_hfp8 = 0;
    uint64_t served_fp16 = 0;
    /// Per-tier admission accounting (overload control): completed
    /// requests split by the tier that admitted them, shed requests
    /// split by reason. With overload off every admit lands in
    /// admitted_bound and every shed in shed_admission.
    uint64_t admitted_calibrated = 0;
    uint64_t admitted_bound = 0;
    uint64_t shed_admission = 0;
    uint64_t shed_brownout = 0;

    /** offered == completed + shed + failed must hold after drain
     *  (failed is zero outside fleet serving). */
    bool accountingClosed() const
    {
        return offered == completed + shed + failed;
    }

    /** The per-tier ledger must close too: every offered request is
     *  admitted by exactly one tier, shed for exactly one reason, or
     *  stranded by a chip failure. */
    bool tierAccountingClosed() const
    {
        return offered == admitted_calibrated + admitted_bound +
                              shed_admission + shed_brownout + failed &&
               shed == shed_admission + shed_brownout;
    }
};

/**
 * Observed queue-delay slice for one (network, precision) batching
 * queue: history-window mean/p95 of the waits completed requests
 * actually experienced, reported beside the router's admission-time
 * prediction on the same requests. With the default bound-only router
 * every individual wait is covered by its own request's bound, so
 * both window stats are <= bound_max_ns; the mean-vs-mean gap is the
 * headroom the calibrated tier (cfg.overload.admission) reclaims.
 */
struct QueueWaitMetrics
{
    std::string network;
    Precision precision = Precision::INT4;
    uint64_t samples = 0;         ///< completed requests observed
    int64_t observed_mean_ns = 0; ///< estimator window mean
    int64_t observed_p95_ns = 0;  ///< estimator window p95
    int64_t bound_mean_ns = 0;    ///< mean proven latency bound
    int64_t bound_max_ns = 0;     ///< max proven latency bound
};

/** Whole-run aggregate view. */
struct ServeMetrics
{
    std::vector<TenantMetrics> tenants;
    TenantMetrics total; ///< name "total"
    double energy_j = 0; ///< all launched batches
    double energy_per_request_mj = 0; ///< mJ per completed request
    double mean_queue_depth = 0;      ///< time-weighted
    int64_t max_queue_depth = 0;
    double mean_batch_size = 0;
    uint64_t batches = 0;
    /// Per-(network, precision) observed queue waits, ordered by
    /// (network name, precision); queues that completed no request
    /// are absent. Not rendered by serveReport/serveJsonRecord.
    std::vector<QueueWaitMetrics> queue_waits;
    /// Overload-control aggregates (all zero when every feature is
    /// off; overload_active mirrors cfg.overload.anyEnabled() and
    /// gates the extra serveReport line so overload-off goldens are
    /// byte-identical to the pre-overload renderer).
    bool overload_active = false;
    uint64_t fuse_trips = 0;    ///< queues whose trust fuse tripped
    uint64_t breaker_opens = 0; ///< breaker open transitions
    uint64_t breaker_closes = 0; ///< breaker re-close transitions
    int brownout_max_level = 0; ///< deepest brownout rung reached
    uint64_t brownout_transitions = 0;
};

/** Aggregate a raw simulation result. */
ServeMetrics computeMetrics(const ServeConfig &cfg,
                            const ServeResult &result);

/**
 * Stable text report (aligned tables, fixed precision) suitable for
 * golden diffing: per-tenant SLA outcomes and an aggregate footer.
 */
std::string serveReport(const ServeMetrics &m);

/**
 * One JSON line describing the aggregate outcome, for the
 * BENCH_serve.json assembly: {"section":..., "policy":..., ...}.
 */
std::string serveJsonRecord(const std::string &section,
                            const std::string &policy,
                            const ServeMetrics &m);

} // namespace rapid

#endif // RAPID_SERVE_METRICS_HH
