/**
 * @file
 * Event-driven multi-tenant serving simulator over the RaPiD chip
 * model. Requests from the deterministic workload generator flow
 * through a precision-aware SLA router into per-(network, precision)
 * dynamic-batching queues; a single serialized executor (the chip)
 * charges each launched batch its PerfModel latency on the virtual
 * clock.
 *
 * Router policy: at admission the router walks the config ladder
 * (cheapest precision first), skips entries below the tenant's
 * quality floor, and picks the first precision whose conservatively
 * predicted completion — current chip backlog, plus one full batching
 * wait, plus a max-batch execution — meets the tenant deadline. When
 * no ladder entry fits, the request is shed immediately (admission
 * control) rather than queued to miss its SLA.
 *
 * Batcher policy: a queue becomes ready when it holds max_batch
 * requests or its head has waited max_wait_ns; a free executor always
 * launches the ready queue with the oldest head (ties: lowest queue
 * id). With a single queue this makes the router's prediction a hard
 * upper bound on completion time; with cross traffic it is an
 * estimate, and the metrics report any deadline violations.
 *
 * Everything runs on the virtual clock: time only advances to arrival
 * times, head timeouts, and batch completions, all integer
 * nanoseconds derived from the frozen LatencyTable. No wall-clock
 * reads anywhere (machine-enforced by the no-wallclock lint check).
 *
 * Execution engine: run() expresses the simulation as typed events
 * (arrival < completion < head-timeout at one instant) on a
 * rapid::DesDomain, and runServeBatch() packs many independent
 * simulations as domains of one DesEngine so a sweep's scenario grid
 * advances in parallel on the shared ThreadPool — bit-identical to
 * serial at any --threads N. runReference() keeps the original
 * single-loop scheduler as the executable specification; the
 * engine-equivalence tests in tests/test_serve.cc hold run() exactly
 * equal to it, field for field.
 */

#ifndef RAPID_SERVE_SERVER_SIM_HH
#define RAPID_SERVE_SERVER_SIM_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "serve/latency_table.hh"
#include "serve/serve_config.hh"
#include "serve/workload.hh"

namespace rapid {

/** Lifecycle of one request, for metrics and invariant tests. */
struct RequestRecord
{
    uint64_t id = 0;
    unsigned tenant = 0;
    Precision precision = Precision::INT4; ///< routed precision
    int64_t arrival_ns = 0;
    int64_t launch_ns = -1;     ///< batch launch, -1 when shed
    int64_t completion_ns = -1; ///< batch completion, -1 when shed
    int64_t predicted_ns = -1;  ///< router's admission-time prediction
    /// Admission tier that accepted the request: always Bound unless
    /// the calibrated tier is enabled and trusted at admission time.
    AdmitTier tier = AdmitTier::Bound;
    /// Why the request was shed (None while admitted).
    ShedReason shed_reason = ShedReason::None;
    /// Admitted as a half-open circuit-breaker probe (breaker only).
    bool probe = false;
    bool shed = false;
    /// True when the hosting chip failed before completion (fleet
    /// serving only; single-chip runs never set it). A failed request
    /// is terminal on this chip — any retry is a fresh record on the
    /// failover target.
    bool failed = false;

    int64_t
    latencyNs() const
    {
        return shed || failed ? -1 : completion_ns - arrival_ns;
    }

    int64_t
    queueWaitNs() const
    {
        return shed || failed ? -1 : launch_ns - arrival_ns;
    }
};

/** One executed batch on the chip. */
struct BatchRecord
{
    size_t network = 0; ///< dense network id (see ServeSim::networks)
    Precision precision = Precision::INT4;
    int64_t size = 0;
    int64_t launch_ns = 0;
    int64_t completion_ns = 0;
    double energy_j = 0;
    /// True when the batch launched below max_batch because its head
    /// timed out (rather than because the trace drained).
    bool forced_by_timeout = false;
};

/** Raw simulation outcome; metrics.hh aggregates it. */
struct ServeResult
{
    std::vector<RequestRecord> requests; ///< in arrival order
    std::vector<BatchRecord> batches;    ///< in launch order
    int64_t horizon_ns = 0;              ///< configured open-loop window
    int64_t end_ns = 0;                  ///< virtual time at drain
    /// Time-integral of total queued requests (depth x ns), for the
    /// time-weighted mean queue depth.
    double queue_depth_integral = 0;
    int64_t max_queue_depth = 0;
    /// Per-queue overload-control outcome, indexed by queue id; empty
    /// when no overload feature is enabled.
    std::vector<QueueOverloadStats> queue_overload;
    /// Brownout level changes in time order (empty when off).
    std::vector<BrownoutTransition> brownout_transitions;
};

/** The simulator: builds the latency table once, then runs traces. */
class ServeSim
{
  public:
    /**
     * Compiles and freezes the latency table for every (tenant
     * network, ladder-or-floor precision, batch <= max_batch) point.
     * Throws rapid::Error on an invalid scenario or chip (including
     * an all-dead dead_core_mask).
     */
    ServeSim(const ChipConfig &chip, const ServeConfig &cfg);

    const ServeConfig &config() const { return cfg_; }
    const LatencyTable &table() const { return table_; }
    /** Dense network id of each tenant (shared across tenants that
     *  serve the same network). */
    const std::vector<size_t> &tenantNetwork() const
    {
        return tenant_network_;
    }
    /** Unique network names, indexed by dense network id. */
    const std::vector<std::string> &networkNames() const
    {
        return network_names_;
    }

    /**
     * Generate the trace and run it to drain on the virtual clock,
     * event-driven on the DES engine (a single domain; use
     * runServeBatch to advance many simulations in parallel).
     */
    ServeResult run() const;

    /**
     * The original serial scheduler loop, kept verbatim as the
     * executable specification of the serving semantics. run() must
     * produce bit-identical results; tests enforce it.
     */
    ServeResult runReference() const;

  private:
    // Declaration order is construction order: the network mapping
    // must exist before the latency table is built from it.
    ChipConfig chip_;
    ServeConfig cfg_;
    std::vector<std::string> network_names_;
    std::vector<size_t> tenant_network_;
    std::vector<Network> networks_;
    LatencyTable table_;
};

/**
 * Run many independent serving simulations as domains of one
 * DesEngine: workload generation and the event loops advance in
 * parallel on the shared ThreadPool, results gather by index, and
 * every entry is bit-identical to sims[i]->run() at any thread
 * count. Throws rapid::Error on a null entry.
 */
std::vector<ServeResult> runServeBatch(
    const std::vector<const ServeSim *> &sims);

} // namespace rapid

#endif // RAPID_SERVE_SERVER_SIM_HH
