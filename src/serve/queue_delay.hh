/**
 * @file
 * History-window queue-delay estimator (ROADMAP item 5, first slice).
 *
 * The SLA router admits against a *proven worst-case* bound —
 * backlog plus a full batching wait plus a max-batch execution — which
 * is safe but pessimistic: under steady load the observed queue wait
 * sits far below it, so the router sheds requests that would have met
 * their deadline comfortably. This estimator records the waits
 * requests actually experienced, per (network, precision) queue, over
 * a sliding history window, and exposes the window mean and p95 next
 * to the hard bound.
 *
 * Two consumers: the metrics layer replays completed waits through it
 * for the observational QueueWaitMetrics slice, and the calibrated
 * admission tier (serve/overload.hh) feeds it online at launch time
 * and routes against windowFill()/p95Ns() when the window is warm —
 * the closing ROADMAP item 5 slice.
 */

#ifndef RAPID_SERVE_QUEUE_DELAY_HH
#define RAPID_SERVE_QUEUE_DELAY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rapid {

/** Sliding-window mean/p95 over observed queue waits. */
class QueueDelayEstimator
{
  public:
    /** @p window is the history length in observations (> 0). */
    explicit QueueDelayEstimator(size_t window = 256);

    /** Record one observed wait (>= 0 ns); evicts the oldest
     *  observation once the window is full. */
    void record(int64_t wait_ns);

    /** Total observations ever recorded. */
    uint64_t count() const { return count_; }

    /** Observations currently in the window. */
    size_t windowFill() const;

    size_t windowSize() const { return window_.size(); }

    /** Mean wait over the window (0 when empty). */
    int64_t meanNs() const;

    /** Nearest-rank p95 wait over the window (0 when empty). */
    int64_t p95Ns() const;

  private:
    std::vector<int64_t> window_; ///< ring buffer
    size_t next_ = 0;             ///< next slot to overwrite
    bool full_ = false;
    uint64_t count_ = 0;
};

} // namespace rapid

#endif // RAPID_SERVE_QUEUE_DELAY_HH
