/**
 * @file
 * Precomputed batch-latency / batch-energy table the serving
 * simulator charges virtual time from. Every (network, precision,
 * batch size) design point is compiled and evaluated once through the
 * existing PerfModel/PowerModel (including fault-induced retry
 * cycles), in parallel across points with results gathered by index,
 * then frozen as integer nanoseconds — so the event-driven simulation
 * on top is bit-identical at any thread count.
 */

#ifndef RAPID_SERVE_LATENCY_TABLE_HH
#define RAPID_SERVE_LATENCY_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "common/fault.hh"
#include "precision/precision.hh"
#include "workloads/layer.hh"

namespace rapid {

/** One frozen (network, precision, batch) evaluation. */
struct LatencyEntry
{
    int64_t latency_ns = 0; ///< end-to-end batch latency, >= 1
    double energy_j = 0;    ///< energy of the whole batch
};

/**
 * Dense table over networks x precisions x batch sizes 1..max_batch.
 * Precisions absent from the requested set hold zeroed entries and
 * must not be queried.
 */
class LatencyTable
{
  public:
    /**
     * Compile and evaluate every point. @p networks are deduplicated
     * by the caller; @p precisions lists the servable modes to
     * evaluate. @p fault charges expected retry cycles into every
     * latency (rate 0 charges nothing).
     */
    LatencyTable(const ChipConfig &chip,
                 const std::vector<Network> &networks,
                 const std::vector<Precision> &precisions,
                 int64_t max_batch, const FaultConfig &fault);

    int64_t maxBatch() const { return max_batch_; }
    size_t numNetworks() const { return num_networks_; }

    /** Batch latency in virtual nanoseconds. */
    int64_t latencyNs(size_t network, Precision p, int64_t batch) const;

    /** Energy of one whole batch in joules. */
    double energyJ(size_t network, Precision p, int64_t batch) const;

    /** True when (p) was evaluated for this table. */
    bool hasPrecision(Precision p) const;

  private:
    const LatencyEntry &at(size_t network, Precision p,
                           int64_t batch) const;

    size_t num_networks_ = 0;
    int64_t max_batch_ = 0;
    std::vector<bool> has_precision_; ///< indexed by Precision value
    std::vector<LatencyEntry> entries_;
};

} // namespace rapid

#endif // RAPID_SERVE_LATENCY_TABLE_HH
