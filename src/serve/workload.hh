/**
 * @file
 * Deterministic open-loop workload generation for the serving
 * simulator: each tenant draws its arrival times from an independent
 * mixSeed(seed, tenant) stream, so the merged trace is a pure function
 * of (config, seed) — independent of thread count and of how many
 * tenants exist before or after a given one.
 */

#ifndef RAPID_SERVE_WORKLOAD_HH
#define RAPID_SERVE_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "serve/serve_config.hh"

namespace rapid {

/** One request entering the front-end. */
struct Arrival
{
    int64_t time_ns = 0;
    unsigned tenant = 0; ///< index into ServeConfig::tenants
    uint64_t id = 0;     ///< dense id in merged arrival order
};

/**
 * Arrival times for one tenant over [0, horizon_ns), sorted
 * ascending. Poisson tenants draw exponential gaps at arrival_rps;
 * bursty tenants draw burst epochs at arrival_rps / burst_mean with
 * geometric(mean burst_mean) coincident request groups, preserving
 * the configured average offered load.
 */
std::vector<int64_t> tenantArrivalTimes(const TenantConfig &tenant,
                                        unsigned tenant_index,
                                        int64_t horizon_ns,
                                        uint64_t seed);

/**
 * The full merged trace, sorted by (time, tenant index) with dense
 * ids assigned in merged order.
 */
std::vector<Arrival> generateArrivals(const ServeConfig &cfg);

} // namespace rapid

#endif // RAPID_SERVE_WORKLOAD_HH
