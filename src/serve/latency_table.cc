#include "serve/latency_table.hh"

#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "perf/perf_model.hh"
#include "power/power_model.hh"
#include "runtime/session.hh"

namespace rapid {

namespace {

constexpr size_t kNumPrecisionModes = 5; // Precision enum cardinality

size_t
precIndex(Precision p)
{
    const size_t idx = size_t(p);
    rapid_assert(idx < kNumPrecisionModes, "precision index ", idx,
                 " out of range");
    return idx;
}

} // namespace

LatencyTable::LatencyTable(const ChipConfig &chip,
                           const std::vector<Network> &networks,
                           const std::vector<Precision> &precisions,
                           int64_t max_batch, const FaultConfig &fault)
    : num_networks_(networks.size()), max_batch_(max_batch),
      has_precision_(kNumPrecisionModes, false)
{
    RAPID_CHECK_ARG(!networks.empty(),
                    "latency table needs at least one network");
    RAPID_CHECK_ARG(!precisions.empty(),
                    "latency table needs at least one precision");
    RAPID_CHECK_ARG(max_batch >= 1,
                    "latency table max_batch must be >= 1, got ",
                    max_batch);
    for (Precision p : precisions)
        has_precision_[precIndex(p)] = true;

    entries_.resize(num_networks_ * kNumPrecisionModes *
                    size_t(max_batch));

    // Every (network, precision, batch) point is an independent
    // compile-and-evaluate; sweep them in parallel and gather by
    // index so the frozen table is bit-identical at any thread count.
    const size_t points =
        networks.size() * precisions.size() * size_t(max_batch);
    const std::vector<LatencyEntry> results =
        parallelMap(points, [&](size_t idx) -> LatencyEntry {
            const size_t per_net = precisions.size() * size_t(max_batch);
            const size_t net = idx / per_net;
            const Precision p = precisions[(idx % per_net) /
                                           size_t(max_batch)];
            const int64_t batch = 1 + int64_t(idx % size_t(max_batch));
            InferenceSession session(chip, networks[net]);
            InferenceOptions opts;
            opts.target = p;
            opts.batch = batch;
            opts.fault = fault;
            const InferenceResult r = session.run(opts);
            LatencyEntry e;
            const double ns = std::ceil(r.perf.total_seconds * 1e9);
            e.latency_ns = ns < 1.0 ? 1 : int64_t(ns);
            e.energy_j = r.energy.energy_j;
            return e;
        });
    for (size_t idx = 0; idx < points; ++idx) {
        const size_t per_net = precisions.size() * size_t(max_batch);
        const size_t net = idx / per_net;
        const Precision p =
            precisions[(idx % per_net) / size_t(max_batch)];
        const int64_t batch = 1 + int64_t(idx % size_t(max_batch));
        entries_[(net * kNumPrecisionModes + precIndex(p)) *
                     size_t(max_batch) +
                 size_t(batch - 1)] = results[idx];
    }
}

const LatencyEntry &
LatencyTable::at(size_t network, Precision p, int64_t batch) const
{
    rapid_assert(network < num_networks_, "network index ", network,
                 " out of range");
    rapid_assert(batch >= 1 && batch <= max_batch_, "batch ", batch,
                 " outside 1..", max_batch_);
    rapid_assert(hasPrecision(p), "precision ", precisionName(p),
                 " not evaluated in this table");
    return entries_[(network * kNumPrecisionModes + precIndex(p)) *
                        size_t(max_batch_) +
                    size_t(batch - 1)];
}

int64_t
LatencyTable::latencyNs(size_t network, Precision p,
                        int64_t batch) const
{
    return at(network, p, batch).latency_ns;
}

double
LatencyTable::energyJ(size_t network, Precision p, int64_t batch) const
{
    return at(network, p, batch).energy_j;
}

bool
LatencyTable::hasPrecision(Precision p) const
{
    return has_precision_[precIndex(p)];
}

} // namespace rapid
