/**
 * @file
 * Event-driven execution core of one ServeSim on a DesDomain,
 * extracted from server_sim.cc so higher tiers (src/cluster) can host
 * the same scheduler as one chip of a fleet. The state and policy
 * helpers mirror ServeSim::runReference line for line; the serial
 * loop's explicit time advance is replaced by three event lanes on
 * the domain clock, ordered at one instant exactly like the serial
 * merge:
 *
 *  - kPriArrival: admit every trace arrival at this instant (in trace
 *    order), schedule the next arrival event, poke the batcher.
 *  - kPriCompletion: the executor frees; poke the batcher.
 *  - kPriTimeout: a queue head's max_wait expires; poke the batcher.
 *
 * A head timeout carries the queue's generation counter at scheduling
 * time; every launch bumps the counter, so a timeout whose head has
 * already launched is a stale no-op — exactly the instants the serial
 * loop never visits. Since stale events still advance the domain
 * clock, end_ns is reconstructed from busy_until and the last arrival
 * (provably equal to the serial loop's final `now` merge) instead of
 * from DesDomain::now().
 *
 * Fleet hooks (all inert unless called, so a core that never sees
 * them is bit-identical to ServeSim::run()):
 *
 *  - injectArrival(): adopt a request originating elsewhere (a
 *    failover redirect or retry) with an explicit remaining deadline
 *    budget; it walks the same router ladder as a trace arrival.
 *  - halt(): fail-stop the chip at the current instant. Every
 *    admitted-but-unfinished and not-yet-admitted request becomes
 *    `failed` and is returned as an orphan manifest (deterministic
 *    order) for the fleet router to re-route or write off; all later
 *    events on the domain are no-ops.
 *  - setTable(): switch the latency table mid-run (a degraded-mode
 *    transition to a chip with dead cores / MPE rows). Only batches
 *    launched after the switch see the new table.
 *
 * Overload control (cfg.overload, see serve/overload.hh; everything
 * defaults off and the default path is bit-identical to the
 * pre-overload scheduler): the router may admit on the calibrated
 * tier (observed p95 wait x margin) once a queue's estimator window
 * is warm, guarded by a per-queue trust fuse that latches back to the
 * proven bound on the first calibrated SLA miss; per-queue circuit
 * breakers skip ladder entries whose queue is open; and the brownout
 * ladder first caps the precision ladder from the expensive end, then
 * sheds tenants from the lowest priority class upward. Estimators are
 * fed at launch (wait = launch - arrival), SLA outcomes are evaluated
 * at the batch-completion event — both on the domain clock, so the
 * whole subsystem replays deterministically at any --threads N.
 */

#ifndef RAPID_SERVE_SERVE_DOMAIN_HH
#define RAPID_SERVE_SERVE_DOMAIN_HH

#include <cstdint>
#include <vector>

#include "common/des.hh"
#include "serve/overload.hh"
#include "serve/queue_delay.hh"
#include "serve/server_sim.hh"

namespace rapid {

/** One request stranded by a chip halt, for fleet-level re-routing. */
struct OrphanRequest
{
    uint64_t id = 0;       ///< record id on the halted chip
    unsigned tenant = 0;   ///< tenant index in the chip's ServeConfig
    int64_t arrival_ns = 0; ///< arrival on the halted chip's clock
    bool admitted = false; ///< queued or in flight (vs trace remainder)
};

/** halt() outcome: the instant plus the stranded-request manifest. */
struct HaltReport
{
    int64_t halt_ns = 0;
    std::vector<OrphanRequest> orphans;
};

/** Event-driven serving scheduler bound to one DES domain. */
class ServeDomainCore
{
  public:
    static constexpr int32_t kPriArrival = 0;
    static constexpr int32_t kPriCompletion = 1;
    static constexpr int32_t kPriTimeout = 2;
    /// Lane for host overlays (heartbeats, failure plans, training
    /// steps) scheduled on the same domain: strictly after every
    /// serving lane at one instant, so overlays observe a settled
    /// scheduler state and never perturb intra-instant serving order.
    static constexpr int32_t kPriOverlay = 3;

    /** Binds to @p sim's config/table; call start() before running. */
    ServeDomainCore(const ServeSim &sim, DesDomain &dom);

    /** Queue the bootstrap event at t=0 so trace generation itself
     *  runs inside the domain — i.e. in parallel across a batch. */
    void start();

    /** Close the run and move the result out (see file comment for
     *  the end_ns reconstruction argument). */
    ServeResult finish();

    /**
     * Adopt a request at max(now, time_ns): appends a RequestRecord,
     * walks the router ladder against @p deadline_ns (the remaining
     * SLA budget as computed by the caller), and returns the new
     * record id. The record sheds if no ladder entry fits, exactly
     * like a trace arrival. Must not be called before the bootstrap
     * event ran or after halt().
     */
    uint64_t injectArrival(int64_t time_ns, unsigned tenant,
                           int64_t deadline_ns);

    /**
     * Fail-stop the chip at the current domain instant. Marks every
     * unfinished request `failed`, closes the depth integral, and
     * returns the orphan manifest in deterministic order: in-flight
     * launched requests (by id), then queued requests (queue order,
     * FIFO), then the unadmitted trace remainder (trace order).
     * Subsequent events on the domain are no-ops, and end_ns freezes
     * at the halt instant.
     */
    HaltReport halt();

    /** Switch the latency table used by future launches (degraded
     *  mode). @p table must outlive the core. */
    void setTable(const LatencyTable *table);

    bool dead() const { return dead_; }
    DesDomain &domain() { return dom_; }
    int64_t busyUntil() const { return busy_until_; }
    /** Requests currently queued (admitted, not launched). */
    int64_t queuedDepth() const { return total_depth_; }
    const ServeResult &result() const { return result_; }

  private:
    /** An injectArrival() whose admission event has not fired yet;
     *  halt() files these as unadmitted orphans. */
    struct InjectedPending
    {
        uint64_t id = 0;
        unsigned tenant = 0;
        int64_t when = 0;
    };

    /** One dynamic-batching queue: requests of one
     *  (network, precision). */
    struct Queue
    {
        size_t network = 0;
        Precision precision = Precision::INT4;
        std::vector<uint64_t> pending; ///< request ids, FIFO
        size_t head = 0;               ///< index of the oldest id

        size_t depth() const { return pending.size() - head; }
        bool empty() const { return head == pending.size(); }
    };

    void bootstrap();
    void noteDepthChange(int64_t t, int64_t delta);
    int64_t queueServiceNs(const Queue &q, int64_t extra) const;
    int64_t backlogNs(int64_t t, size_t exclude) const;
    bool routeRequest(RequestRecord &rec, int64_t deadline_ns);
    void admit(const Arrival &a);
    int readyQueue(int64_t t) const;
    void scheduleHeadTimeout(size_t qi);
    void launch(int qi, int64_t t);
    void tryLaunch(int64_t t);
    void onArrival();
    void onTimeout(size_t qi, uint64_t gen);
    void onBatchOutcome(size_t qi, const std::vector<uint64_t> &ids);
    bool fuseTripped(size_t qi) const;

    const ServeSim &sim_;
    DesDomain &dom_;
    const ServeConfig &cfg_;
    const LatencyTable *table_; ///< swappable via setTable()
    const std::vector<size_t> &tenant_network_;
    int64_t max_batch_;
    int64_t max_wait_;

    std::vector<Arrival> arrivals_;
    std::vector<InjectedPending> pending_injected_;
    std::vector<Queue> queues_;
    std::vector<std::vector<int>> queue_of_;
    /// Bumped on every launch of the queue; pending head timeouts
    /// capture the value at scheduling time and no-op on mismatch.
    std::vector<uint64_t> head_gen_;
    int64_t busy_until_ = -1; ///< executor busy while t < busy_until
    size_t next_arrival_ = 0;
    int64_t total_depth_ = 0; ///< requests queued across all queues
    int64_t last_event_ns_ = 0;
    bool bootstrapped_ = false;
    bool dead_ = false;
    int64_t halt_ns_ = 0;
    ServeResult result_;

    // Overload control (all empty/inert when cfg.overload has no
    // feature enabled, so the default path stays bit-identical to
    // runReference and allocation-free).
    std::vector<QueueDelayEstimator> wait_est_; ///< per queue
    std::vector<int64_t> fuse_strikes_;         ///< per queue
    std::vector<CircuitBreaker> breakers_;      ///< per queue
    BrownoutController brownout_;
    int brownout_precision_rungs_ = 0;
    /// Ascending distinct tenant priorities minus the top class: the
    /// k-th shedding rung drops tenants with priority <= cutoffs[k-1].
    std::vector<int> brownout_shed_cutoffs_;
};

} // namespace rapid

#endif // RAPID_SERVE_SERVE_DOMAIN_HH
