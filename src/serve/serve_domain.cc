#include "serve/serve_domain.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hh"
#include "common/logging.hh"

namespace rapid {

namespace {

constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

} // namespace

ServeDomainCore::ServeDomainCore(const ServeSim &sim, DesDomain &dom)
    : sim_(sim), dom_(dom), cfg_(sim.config()), table_(&sim.table()),
      tenant_network_(sim.tenantNetwork()),
      max_batch_(cfg_.batcher.max_batch),
      max_wait_(cfg_.batcher.max_wait_ns)
{
}

void
ServeDomainCore::start()
{
    dom_.schedule(0, kPriArrival, [this] { bootstrap(); });
}

void
ServeDomainCore::bootstrap()
{
    arrivals_ = generateArrivals(cfg_);
    result_.horizon_ns = cfg_.horizon_ns;
    result_.requests.resize(arrivals_.size());

    // Queue per (network, ladder position): created eagerly in a
    // deterministic order so queue ids are stable across runs.
    const size_t num_networks = sim_.networkNames().size();
    queue_of_.resize(num_networks);
    for (size_t n = 0; n < num_networks; ++n) {
        queue_of_[n].assign(cfg_.ladder.size(), -1);
        for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
            Queue q;
            q.network = n;
            q.precision = cfg_.ladder[li];
            queue_of_[n][li] = int(queues_.size());
            queues_.push_back(q);
        }
    }
    head_gen_.assign(queues_.size(), 0);
    bootstrapped_ = true;

    if (!arrivals_.empty())
        dom_.schedule(arrivals_[0].time_ns, kPriArrival,
                      [this] { onArrival(); });
}

void
ServeDomainCore::noteDepthChange(int64_t t, int64_t delta)
{
    result_.queue_depth_integral +=
        double(total_depth_) * double(t - last_event_ns_);
    last_event_ns_ = t;
    total_depth_ += delta;
    result_.max_queue_depth =
        std::max(result_.max_queue_depth, total_depth_);
}

// Worst-case service time of one queue holding @p extra more
// requests than it does now: every planned batch charged at the
// max-batch latency (monotone in size, so an upper bound).
int64_t
ServeDomainCore::queueServiceNs(const Queue &q, int64_t extra) const
{
    const int64_t depth = int64_t(q.depth()) + extra;
    if (depth <= 0)
        return int64_t{0};
    const int64_t batches = (depth + max_batch_ - 1) / max_batch_;
    return batches *
           table_->latencyNs(q.network, q.precision, max_batch_);
}

// Conservative chip backlog as seen by a request joining queue
// @p exclude: remaining executor time plus the worst-case service
// of every other queue (the joined queue is charged separately,
// with the request included, so nothing is double-counted).
int64_t
ServeDomainCore::backlogNs(int64_t t, size_t exclude) const
{
    int64_t backlog = busy_until_ > t ? busy_until_ - t : 0;
    for (size_t qi = 0; qi < queues_.size(); ++qi)
        if (qi != exclude)
            backlog += queueServiceNs(queues_[qi], 0);
    return backlog;
}

/**
 * The router ladder walk shared by trace and injected arrivals:
 * pick the cheapest precision at or above the tenant floor whose
 * conservatively predicted completion fits @p deadline_ns, queue the
 * request there, and return true. Returns false (caller sheds) when
 * no ladder entry fits.
 */
bool
ServeDomainCore::routeRequest(RequestRecord &rec, int64_t deadline_ns)
{
    const TenantConfig &tenant = cfg_.tenants[rec.tenant];
    const size_t net = tenant_network_[rec.tenant];
    const int floor = servingQuality(tenant.min_precision);
    for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
        const Precision p = cfg_.ladder[li];
        if (servingQuality(p) < floor)
            continue;
        const size_t qi = size_t(queue_of_[net][li]);
        // With a single queue this is a hard upper bound on the
        // request's latency: batches ahead of it run back to back
        // (a full queue is ready immediately), and the executor
        // idles at most once, for at most max_wait past the head's
        // arrival, before the request's own partial batch expires.
        const int64_t predicted =
            backlogNs(rec.arrival_ns, qi) +
            queueServiceNs(queues_[qi], +1) + max_wait_;
        if (predicted <= deadline_ns) {
            rec.precision = p;
            rec.predicted_ns = predicted;
            Queue &q = queues_[qi];
            const bool was_empty = q.empty();
            q.pending.push_back(rec.id);
            noteDepthChange(rec.arrival_ns, +1);
            // A previously empty queue gains a head: arm its
            // max_wait expiry.
            if (was_empty)
                scheduleHeadTimeout(qi);
            return true;
        }
    }
    return false;
}

void
ServeDomainCore::admit(const Arrival &a)
{
    RequestRecord &rec = result_.requests[a.id];
    rec.id = a.id;
    rec.tenant = a.tenant;
    rec.arrival_ns = a.time_ns;
    if (!routeRequest(rec, cfg_.tenants[a.tenant].deadline_ns))
        rec.shed = true; // no ladder entry can meet the deadline
}

// A queue is ready when full or its head has waited max_wait.
int
ServeDomainCore::readyQueue(int64_t t) const
{
    int best = -1;
    int64_t best_head = kNever;
    for (size_t qi = 0; qi < queues_.size(); ++qi) {
        const Queue &q = queues_[qi];
        if (q.empty())
            continue;
        const int64_t head_arrival =
            result_.requests[q.pending[q.head]].arrival_ns;
        const bool full = int64_t(q.depth()) >= max_batch_;
        const bool expired = t - head_arrival >= max_wait_;
        const bool drained = next_arrival_ >= arrivals_.size();
        if ((full || expired || drained) && head_arrival < best_head) {
            best = int(qi);
            best_head = head_arrival;
        }
    }
    return best;
}

void
ServeDomainCore::scheduleHeadTimeout(size_t qi)
{
    const Queue &q = queues_[qi];
    rapid_dassert(!q.empty(),
                  "arming a head timeout on an empty queue");
    const int64_t head_arrival =
        result_.requests[q.pending[q.head]].arrival_ns;
    // The serial loop clamps an already-expired timeout to the
    // current instant; schedule does the same.
    const int64_t when = std::max(dom_.now(), head_arrival + max_wait_);
    const uint64_t gen = head_gen_[qi];
    dom_.schedule(when, kPriTimeout,
                  [this, qi, gen] { onTimeout(qi, gen); });
}

void
ServeDomainCore::launch(int qi, int64_t t)
{
    Queue &q = queues_[size_t(qi)];
    const int64_t size =
        std::min<int64_t>(int64_t(q.depth()), max_batch_);
    BatchRecord batch;
    batch.network = q.network;
    batch.precision = q.precision;
    batch.size = size;
    batch.launch_ns = t;
    batch.completion_ns =
        t + table_->latencyNs(q.network, q.precision, size);
    batch.energy_j = table_->energyJ(q.network, q.precision, size);
    batch.forced_by_timeout =
        size < max_batch_ && next_arrival_ < arrivals_.size();
    for (int64_t i = 0; i < size; ++i) {
        RequestRecord &rec =
            result_.requests[q.pending[q.head + size_t(i)]];
        rec.launch_ns = t;
        rec.completion_ns = batch.completion_ns;
    }
    q.head += size_t(size);
    if (q.empty()) {
        q.pending.clear();
        q.head = 0;
    }
    noteDepthChange(t, -size);
    busy_until_ = batch.completion_ns;
    result_.batches.push_back(batch);
    // The launched head is gone: invalidate its pending timeout
    // and arm the next head's.
    ++head_gen_[size_t(qi)];
    if (!q.empty())
        scheduleHeadTimeout(size_t(qi));
    dom_.schedule(batch.completion_ns, kPriCompletion,
                  [this] { tryLaunch(dom_.now()); });
}

/** The executor may act: launch the ready queue with the oldest
 *  head, if any — the serial loop's per-wakeup step. */
void
ServeDomainCore::tryLaunch(int64_t t)
{
    if (dead_ || t < busy_until_)
        return;
    const int ready = readyQueue(t);
    if (ready >= 0)
        launch(ready, t);
}

void
ServeDomainCore::onArrival()
{
    if (dead_)
        return;
    // Admit every arrival at the current instant (merged order),
    // exactly like the serial loop's admission sweep.
    while (next_arrival_ < arrivals_.size() &&
           arrivals_[next_arrival_].time_ns <= dom_.now())
        admit(arrivals_[next_arrival_++]);
    if (next_arrival_ < arrivals_.size())
        dom_.schedule(arrivals_[next_arrival_].time_ns, kPriArrival,
                      [this] { onArrival(); });
    tryLaunch(dom_.now());
}

void
ServeDomainCore::onTimeout(size_t qi, uint64_t gen)
{
    // A launch bumped the generation: this head no longer exists
    // and the serial loop would never have woken here.
    if (dead_ || gen != head_gen_[qi])
        return;
    tryLaunch(dom_.now());
}

uint64_t
ServeDomainCore::injectArrival(int64_t time_ns, unsigned tenant,
                               int64_t deadline_ns)
{
    RAPID_CHECK_ARG(tenant < cfg_.tenants.size(),
                    "injectArrival: tenant ", tenant,
                    " out of range for ", cfg_.tenants.size(),
                    " tenants");
    RAPID_CHECK_ARG(deadline_ns > 0,
                    "injectArrival: non-positive deadline budget ",
                    deadline_ns);
    rapid_assert(bootstrapped_ && !dead_,
                 "injectArrival outside the live window");
    const uint64_t id = result_.requests.size();
    result_.requests.emplace_back();
    const int64_t when = std::max(dom_.now(), time_ns);
    pending_injected_.push_back({id, tenant, when});
    dom_.schedule(when, kPriArrival,
                  [this, id, tenant, when, deadline_ns] {
                      if (dead_)
                          return; // halt() already filed the record
                      for (size_t i = 0; i < pending_injected_.size();
                           ++i)
                          if (pending_injected_[i].id == id) {
                              pending_injected_.erase(
                                  pending_injected_.begin() +
                                  long(i));
                              break;
                          }
                      RequestRecord &rec = result_.requests[id];
                      rec.id = id;
                      rec.tenant = tenant;
                      rec.arrival_ns = when;
                      if (!routeRequest(rec, deadline_ns))
                          rec.shed = true;
                      tryLaunch(dom_.now());
                  });
    return id;
}

HaltReport
ServeDomainCore::halt()
{
    rapid_assert(bootstrapped_ && !dead_,
                 "halt outside the live window");
    dead_ = true;
    halt_ns_ = dom_.now();
    HaltReport report;
    report.halt_ns = halt_ns_;

    auto file = [&](uint64_t id, bool admitted) {
        RequestRecord &rec = result_.requests[id];
        rec.failed = true;
        OrphanRequest o;
        o.id = id;
        o.tenant = rec.tenant;
        o.arrival_ns = rec.arrival_ns;
        o.admitted = admitted;
        report.orphans.push_back(o);
    };

    // In-flight launched requests (the executor died mid-batch), in
    // id order.
    for (size_t id = 0; id < result_.requests.size(); ++id) {
        const RequestRecord &rec = result_.requests[id];
        if (!rec.shed && !rec.failed && rec.launch_ns >= 0 &&
            rec.completion_ns > halt_ns_)
            file(id, true);
    }
    // Queued requests, in (queue id, FIFO) order.
    noteDepthChange(halt_ns_, -total_depth_);
    for (Queue &q : queues_) {
        for (size_t i = q.head; i < q.pending.size(); ++i)
            file(q.pending[i], true);
        q.pending.clear();
        q.head = 0;
    }
    // Injected arrivals scheduled but not yet admitted.
    for (const InjectedPending &p : pending_injected_) {
        RequestRecord &rec = result_.requests[p.id];
        rec.id = p.id;
        rec.tenant = p.tenant;
        rec.arrival_ns = p.when;
        file(p.id, false);
    }
    pending_injected_.clear();
    // The unadmitted trace remainder, in trace order.
    for (size_t i = next_arrival_; i < arrivals_.size(); ++i) {
        const Arrival &a = arrivals_[i];
        RequestRecord &rec = result_.requests[a.id];
        rec.id = a.id;
        rec.tenant = a.tenant;
        rec.arrival_ns = a.time_ns;
        file(a.id, false);
    }
    next_arrival_ = arrivals_.size();
    return report;
}

void
ServeDomainCore::setTable(const LatencyTable *table)
{
    RAPID_CHECK_ARG(table != nullptr, "setTable: null latency table");
    table_ = table;
}

/**
 * Close the run. end_ns cannot read dom.now(): stale timeouts
 * legitimately advance the domain clock past the last state change.
 * The serial loop's final `now` is provably max(busy_until, last
 * arrival, 0) — every other advance target (a timeout it wakes for)
 * immediately launches and is therefore <= the final busy_until. A
 * halted chip instead freezes at the halt instant, where its depth
 * integral was closed.
 */
ServeResult
ServeDomainCore::finish()
{
    if (dead_) {
        result_.end_ns = halt_ns_;
        return std::move(result_);
    }
    int64_t end = std::max<int64_t>(busy_until_, 0);
    if (!arrivals_.empty())
        end = std::max(end, arrivals_.back().time_ns);
    result_.end_ns = end;
    noteDepthChange(end, 0); // close the depth integral
    return std::move(result_);
}

} // namespace rapid
