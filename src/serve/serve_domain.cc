#include "serve/serve_domain.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hh"
#include "common/logging.hh"

namespace rapid {

namespace {

constexpr int64_t kNever = std::numeric_limits<int64_t>::max();

/** Ascending distinct tenant priorities with the top class removed:
 *  the brownout shedding rungs, lowest class first. */
std::vector<int>
brownoutShedCutoffs(const ServeConfig &cfg)
{
    std::vector<int> prios;
    for (const TenantConfig &t : cfg.tenants)
        if (std::find(prios.begin(), prios.end(), t.priority) ==
            prios.end())
            prios.push_back(t.priority);
    std::sort(prios.begin(), prios.end());
    if (!prios.empty())
        prios.pop_back(); // the highest class is never brownout-shed
    return prios;
}

} // namespace

ServeDomainCore::ServeDomainCore(const ServeSim &sim, DesDomain &dom)
    : sim_(sim), dom_(dom), cfg_(sim.config()), table_(&sim.table()),
      tenant_network_(sim.tenantNetwork()),
      max_batch_(cfg_.batcher.max_batch),
      max_wait_(cfg_.batcher.max_wait_ns),
      brownout_(sim.config().overload.brownout,
                int(sim.config().ladder.size()) - 1 +
                    int(brownoutShedCutoffs(sim.config()).size())),
      brownout_precision_rungs_(int(sim.config().ladder.size()) - 1),
      brownout_shed_cutoffs_(brownoutShedCutoffs(sim.config()))
{
}

void
ServeDomainCore::start()
{
    dom_.schedule(0, kPriArrival, [this] { bootstrap(); });
}

void
ServeDomainCore::bootstrap()
{
    arrivals_ = generateArrivals(cfg_);
    result_.horizon_ns = cfg_.horizon_ns;
    result_.requests.resize(arrivals_.size());

    // Queue per (network, ladder position): created eagerly in a
    // deterministic order so queue ids are stable across runs.
    const size_t num_networks = sim_.networkNames().size();
    queue_of_.resize(num_networks);
    for (size_t n = 0; n < num_networks; ++n) {
        queue_of_[n].assign(cfg_.ladder.size(), -1);
        for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
            Queue q;
            q.network = n;
            q.precision = cfg_.ladder[li];
            queue_of_[n][li] = int(queues_.size());
            queues_.push_back(q);
        }
    }
    head_gen_.assign(queues_.size(), 0);

    const OverloadConfig &ov = cfg_.overload;
    if (ov.anyEnabled()) {
        result_.queue_overload.resize(queues_.size());
        for (size_t qi = 0; qi < queues_.size(); ++qi) {
            result_.queue_overload[qi].network = queues_[qi].network;
            result_.queue_overload[qi].precision =
                queues_[qi].precision;
        }
    }
    if (ov.admission.enabled) {
        fuse_strikes_.assign(queues_.size(), 0);
        wait_est_.reserve(queues_.size());
        for (size_t qi = 0; qi < queues_.size(); ++qi)
            wait_est_.emplace_back(ov.admission.window);
    }
    if (ov.breaker.enabled)
        breakers_.assign(queues_.size(), CircuitBreaker(ov.breaker));
    bootstrapped_ = true;

    if (!arrivals_.empty())
        dom_.schedule(arrivals_[0].time_ns, kPriArrival,
                      [this] { onArrival(); });
}

void
ServeDomainCore::noteDepthChange(int64_t t, int64_t delta)
{
    result_.queue_depth_integral +=
        double(total_depth_) * double(t - last_event_ns_);
    last_event_ns_ = t;
    total_depth_ += delta;
    result_.max_queue_depth =
        std::max(result_.max_queue_depth, total_depth_);
    if (cfg_.overload.brownout.enabled)
        brownout_.observe(t, total_depth_);
}

// Worst-case service time of one queue holding @p extra more
// requests than it does now: every planned batch charged at the
// max-batch latency (monotone in size, so an upper bound).
int64_t
ServeDomainCore::queueServiceNs(const Queue &q, int64_t extra) const
{
    const int64_t depth = int64_t(q.depth()) + extra;
    if (depth <= 0)
        return int64_t{0};
    const int64_t batches = (depth + max_batch_ - 1) / max_batch_;
    return batches *
           table_->latencyNs(q.network, q.precision, max_batch_);
}

// Conservative chip backlog as seen by a request joining queue
// @p exclude: remaining executor time plus the worst-case service
// of every other queue (the joined queue is charged separately,
// with the request included, so nothing is double-counted).
int64_t
ServeDomainCore::backlogNs(int64_t t, size_t exclude) const
{
    int64_t backlog = busy_until_ > t ? busy_until_ - t : 0;
    for (size_t qi = 0; qi < queues_.size(); ++qi)
        if (qi != exclude)
            backlog += queueServiceNs(queues_[qi], 0);
    return backlog;
}

bool
ServeDomainCore::fuseTripped(size_t qi) const
{
    return !result_.queue_overload.empty() &&
           result_.queue_overload[qi].fuse_tripped;
}

/**
 * The router ladder walk shared by trace and injected arrivals:
 * pick the cheapest precision at or above the tenant floor whose
 * predicted completion fits @p deadline_ns, queue the request there,
 * and return true. Returns false (caller sheds) when no ladder entry
 * fits or a brownout shedding rung drops the tenant. The prediction
 * comes from the calibrated tier when it is enabled, warm, and
 * unfused for the queue, else from the proven worst-case bound.
 */
bool
ServeDomainCore::routeRequest(RequestRecord &rec, int64_t deadline_ns)
{
    const TenantConfig &tenant = cfg_.tenants[rec.tenant];
    const size_t net = tenant_network_[rec.tenant];
    const int floor = servingQuality(tenant.min_precision);
    const OverloadConfig &ov = cfg_.overload;

    // Brownout: precision rungs cap the ladder from the expensive
    // end; only the rungs past them shed, lowest priority class
    // first. Precision always degrades before anyone sheds.
    size_t cap = cfg_.ladder.size() - 1;
    if (ov.brownout.enabled) {
        const int level = brownout_.level(rec.arrival_ns);
        const int shed_rung = level - brownout_precision_rungs_;
        if (shed_rung > 0 &&
            tenant.priority <=
                brownout_shed_cutoffs_[size_t(shed_rung) - 1]) {
            rec.shed_reason = ShedReason::Brownout;
            return false;
        }
        cap -= size_t(std::min(level, brownout_precision_rungs_));
        // The cap never overrides a tenant's quality floor: if every
        // uncapped entry sits below the floor, the cap lifts for this
        // tenant (brownout degrades quality, it never sheds via the
        // precision rungs).
        bool floor_under_cap = false;
        for (size_t li = 0; li <= cap && !floor_under_cap; ++li)
            floor_under_cap =
                servingQuality(cfg_.ladder[li]) >= floor;
        if (!floor_under_cap)
            cap = cfg_.ladder.size() - 1;
    }

    for (size_t li = 0; li < cfg_.ladder.size(); ++li) {
        const Precision p = cfg_.ladder[li];
        if (servingQuality(p) < floor)
            continue;
        if (li > cap)
            continue;
        const size_t qi = size_t(queue_of_[net][li]);
        if (ov.breaker.enabled &&
            !breakers_[qi].allowAdmit(rec.arrival_ns))
            continue;
        AdmitTier tier = AdmitTier::Bound;
        int64_t predicted = 0;
        if (ov.admission.enabled && !fuseTripped(qi) &&
            wait_est_[qi].windowFill() >= ov.admission.min_samples) {
            // Calibrated tier: the waits requests actually saw on
            // this queue (p95 over the history window, scaled by the
            // safety margin) plus this request's own max-batch
            // execution. Far tighter than the worst-case bound under
            // steady load; the trust fuse below guards the shortcut.
            tier = AdmitTier::Calibrated;
            predicted =
                int64_t(double(wait_est_[qi].p95Ns()) *
                        ov.admission.safety_margin) +
                table_->latencyNs(queues_[qi].network,
                                  queues_[qi].precision, max_batch_);
        } else {
            // With a single queue this is a hard upper bound on the
            // request's latency: batches ahead of it run back to back
            // (a full queue is ready immediately), and the executor
            // idles at most once, for at most max_wait past the
            // head's arrival, before the request's own partial batch
            // expires.
            predicted = backlogNs(rec.arrival_ns, qi) +
                        queueServiceNs(queues_[qi], +1) + max_wait_;
        }
        if (predicted <= deadline_ns) {
            rec.precision = p;
            rec.predicted_ns = predicted;
            rec.tier = tier;
            Queue &q = queues_[qi];
            const bool was_empty = q.empty();
            q.pending.push_back(rec.id);
            noteDepthChange(rec.arrival_ns, +1);
            if (!result_.queue_overload.empty()) {
                QueueOverloadStats &qs = result_.queue_overload[qi];
                if (tier == AdmitTier::Calibrated)
                    ++qs.admitted_calibrated;
                else
                    ++qs.admitted_bound;
            }
            if (ov.breaker.enabled) {
                rec.probe = breakers_[qi].onAdmit(rec.arrival_ns);
                breakers_[qi].onDepth(rec.arrival_ns,
                                      int64_t(q.depth()));
            }
            // A previously empty queue gains a head: arm its
            // max_wait expiry.
            if (was_empty)
                scheduleHeadTimeout(qi);
            return true;
        }
    }
    rec.shed_reason = ShedReason::Admission;
    return false;
}

void
ServeDomainCore::admit(const Arrival &a)
{
    RequestRecord &rec = result_.requests[a.id];
    rec.id = a.id;
    rec.tenant = a.tenant;
    rec.arrival_ns = a.time_ns;
    if (!routeRequest(rec, cfg_.tenants[a.tenant].deadline_ns))
        rec.shed = true; // no ladder entry can meet the deadline
}

// A queue is ready when full or its head has waited max_wait.
int
ServeDomainCore::readyQueue(int64_t t) const
{
    int best = -1;
    int64_t best_head = kNever;
    for (size_t qi = 0; qi < queues_.size(); ++qi) {
        const Queue &q = queues_[qi];
        if (q.empty())
            continue;
        const int64_t head_arrival =
            result_.requests[q.pending[q.head]].arrival_ns;
        const bool full = int64_t(q.depth()) >= max_batch_;
        const bool expired = t - head_arrival >= max_wait_;
        const bool drained = next_arrival_ >= arrivals_.size();
        if ((full || expired || drained) && head_arrival < best_head) {
            best = int(qi);
            best_head = head_arrival;
        }
    }
    return best;
}

void
ServeDomainCore::scheduleHeadTimeout(size_t qi)
{
    const Queue &q = queues_[qi];
    rapid_dassert(!q.empty(),
                  "arming a head timeout on an empty queue");
    const int64_t head_arrival =
        result_.requests[q.pending[q.head]].arrival_ns;
    // The serial loop clamps an already-expired timeout to the
    // current instant; schedule does the same.
    const int64_t when = std::max(dom_.now(), head_arrival + max_wait_);
    const uint64_t gen = head_gen_[qi];
    dom_.schedule(when, kPriTimeout,
                  [this, qi, gen] { onTimeout(qi, gen); });
}

void
ServeDomainCore::launch(int qi, int64_t t)
{
    Queue &q = queues_[size_t(qi)];
    const int64_t size =
        std::min<int64_t>(int64_t(q.depth()), max_batch_);
    BatchRecord batch;
    batch.network = q.network;
    batch.precision = q.precision;
    batch.size = size;
    batch.launch_ns = t;
    batch.completion_ns =
        t + table_->latencyNs(q.network, q.precision, size);
    batch.energy_j = table_->energyJ(q.network, q.precision, size);
    batch.forced_by_timeout =
        size < max_batch_ && next_arrival_ < arrivals_.size();
    // The calibrated tier and the breaker need per-request SLA
    // outcomes at completion time; capture the launched ids only when
    // one of them is on (the default path stays allocation-free).
    const bool track_outcomes = cfg_.overload.admission.enabled ||
                                cfg_.overload.breaker.enabled;
    std::vector<uint64_t> launched;
    if (track_outcomes)
        launched.assign(q.pending.begin() + long(q.head),
                        q.pending.begin() + long(q.head) +
                            long(size));
    for (int64_t i = 0; i < size; ++i) {
        RequestRecord &rec =
            result_.requests[q.pending[q.head + size_t(i)]];
        rec.launch_ns = t;
        rec.completion_ns = batch.completion_ns;
        // Feed the queue's wait estimator at launch: the wait is
        // known here, and future admissions may use it immediately.
        if (cfg_.overload.admission.enabled)
            wait_est_[size_t(qi)].record(t - rec.arrival_ns);
    }
    q.head += size_t(size);
    if (q.empty()) {
        q.pending.clear();
        q.head = 0;
    }
    noteDepthChange(t, -size);
    busy_until_ = batch.completion_ns;
    result_.batches.push_back(batch);
    // The launched head is gone: invalidate its pending timeout
    // and arm the next head's.
    ++head_gen_[size_t(qi)];
    if (!q.empty())
        scheduleHeadTimeout(size_t(qi));
    if (track_outcomes) {
        const size_t uqi = size_t(qi);
        dom_.schedule(batch.completion_ns, kPriCompletion,
                      [this, uqi, ids = std::move(launched)] {
                          onBatchOutcome(uqi, ids);
                          tryLaunch(dom_.now());
                      });
    } else {
        dom_.schedule(batch.completion_ns, kPriCompletion,
                      [this] { tryLaunch(dom_.now()); });
    }
}

/**
 * SLA outcomes of a completed batch: strike the queue's trust fuse on
 * a calibrated-admitted violation and feed the circuit breaker. Runs
 * in the completion lane, before the freed executor launches again.
 */
void
ServeDomainCore::onBatchOutcome(size_t qi,
                                const std::vector<uint64_t> &ids)
{
    if (dead_)
        return; // halt() already filed these requests as failed
    const int64_t now = dom_.now();
    const OverloadConfig &ov = cfg_.overload;
    QueueOverloadStats &qs = result_.queue_overload[qi];
    for (uint64_t id : ids) {
        const RequestRecord &rec = result_.requests[id];
        const bool violation =
            rec.latencyNs() > cfg_.tenants[rec.tenant].deadline_ns;
        if (ov.admission.enabled && ov.admission.fuse_enabled &&
            violation && rec.tier == AdmitTier::Calibrated &&
            !qs.fuse_tripped &&
            ++fuse_strikes_[qi] >= ov.admission.fuse_violations) {
            // Trust fuse: a calibrated admit missed its SLA, so the
            // estimator can no longer be trusted on this queue; latch
            // back to the proven bound for the rest of the run.
            qs.fuse_tripped = true;
            qs.fuse_trip_ns = now;
        }
        if (ov.breaker.enabled)
            breakers_[qi].onOutcome(now, violation, rec.probe);
    }
    if (ov.breaker.enabled) {
        qs.breaker_opens = breakers_[qi].opens();
        qs.breaker_closes = breakers_[qi].closes();
    }
}

/** The executor may act: launch the ready queue with the oldest
 *  head, if any — the serial loop's per-wakeup step. */
void
ServeDomainCore::tryLaunch(int64_t t)
{
    if (dead_ || t < busy_until_)
        return;
    const int ready = readyQueue(t);
    if (ready >= 0)
        launch(ready, t);
}

void
ServeDomainCore::onArrival()
{
    if (dead_)
        return;
    // Admit every arrival at the current instant (merged order),
    // exactly like the serial loop's admission sweep.
    while (next_arrival_ < arrivals_.size() &&
           arrivals_[next_arrival_].time_ns <= dom_.now())
        admit(arrivals_[next_arrival_++]);
    if (next_arrival_ < arrivals_.size())
        dom_.schedule(arrivals_[next_arrival_].time_ns, kPriArrival,
                      [this] { onArrival(); });
    tryLaunch(dom_.now());
}

void
ServeDomainCore::onTimeout(size_t qi, uint64_t gen)
{
    // A launch bumped the generation: this head no longer exists
    // and the serial loop would never have woken here.
    if (dead_ || gen != head_gen_[qi])
        return;
    tryLaunch(dom_.now());
}

uint64_t
ServeDomainCore::injectArrival(int64_t time_ns, unsigned tenant,
                               int64_t deadline_ns)
{
    RAPID_CHECK_ARG(tenant < cfg_.tenants.size(),
                    "injectArrival: tenant ", tenant,
                    " out of range for ", cfg_.tenants.size(),
                    " tenants");
    RAPID_CHECK_ARG(deadline_ns > 0,
                    "injectArrival: non-positive deadline budget ",
                    deadline_ns);
    rapid_assert(bootstrapped_ && !dead_,
                 "injectArrival outside the live window");
    const uint64_t id = result_.requests.size();
    result_.requests.emplace_back();
    const int64_t when = std::max(dom_.now(), time_ns);
    pending_injected_.push_back({id, tenant, when});
    dom_.schedule(when, kPriArrival,
                  [this, id, tenant, when, deadline_ns] {
                      if (dead_)
                          return; // halt() already filed the record
                      for (size_t i = 0; i < pending_injected_.size();
                           ++i)
                          if (pending_injected_[i].id == id) {
                              pending_injected_.erase(
                                  pending_injected_.begin() +
                                  long(i));
                              break;
                          }
                      RequestRecord &rec = result_.requests[id];
                      rec.id = id;
                      rec.tenant = tenant;
                      rec.arrival_ns = when;
                      if (!routeRequest(rec, deadline_ns))
                          rec.shed = true;
                      tryLaunch(dom_.now());
                  });
    return id;
}

HaltReport
ServeDomainCore::halt()
{
    rapid_assert(bootstrapped_ && !dead_,
                 "halt outside the live window");
    dead_ = true;
    halt_ns_ = dom_.now();
    HaltReport report;
    report.halt_ns = halt_ns_;

    auto file = [&](uint64_t id, bool admitted) {
        RequestRecord &rec = result_.requests[id];
        rec.failed = true;
        OrphanRequest o;
        o.id = id;
        o.tenant = rec.tenant;
        o.arrival_ns = rec.arrival_ns;
        o.admitted = admitted;
        report.orphans.push_back(o);
    };

    // In-flight launched requests (the executor died mid-batch), in
    // id order.
    for (size_t id = 0; id < result_.requests.size(); ++id) {
        const RequestRecord &rec = result_.requests[id];
        if (!rec.shed && !rec.failed && rec.launch_ns >= 0 &&
            rec.completion_ns > halt_ns_)
            file(id, true);
    }
    // Queued requests, in (queue id, FIFO) order.
    noteDepthChange(halt_ns_, -total_depth_);
    for (Queue &q : queues_) {
        for (size_t i = q.head; i < q.pending.size(); ++i)
            file(q.pending[i], true);
        q.pending.clear();
        q.head = 0;
    }
    // Injected arrivals scheduled but not yet admitted.
    for (const InjectedPending &p : pending_injected_) {
        RequestRecord &rec = result_.requests[p.id];
        rec.id = p.id;
        rec.tenant = p.tenant;
        rec.arrival_ns = p.when;
        file(p.id, false);
    }
    pending_injected_.clear();
    // The unadmitted trace remainder, in trace order.
    for (size_t i = next_arrival_; i < arrivals_.size(); ++i) {
        const Arrival &a = arrivals_[i];
        RequestRecord &rec = result_.requests[a.id];
        rec.id = a.id;
        rec.tenant = a.tenant;
        rec.arrival_ns = a.time_ns;
        file(a.id, false);
    }
    next_arrival_ = arrivals_.size();
    return report;
}

void
ServeDomainCore::setTable(const LatencyTable *table)
{
    RAPID_CHECK_ARG(table != nullptr, "setTable: null latency table");
    table_ = table;
}

/**
 * Close the run. end_ns cannot read dom.now(): stale timeouts
 * legitimately advance the domain clock past the last state change.
 * The serial loop's final `now` is provably max(busy_until, last
 * arrival, 0) — every other advance target (a timeout it wakes for)
 * immediately launches and is therefore <= the final busy_until. A
 * halted chip instead freezes at the halt instant, where its depth
 * integral was closed.
 */
ServeResult
ServeDomainCore::finish()
{
    // Final overload snapshots: breaker counters (an open with no
    // completion after it has not been synced yet) and the brownout
    // trace settled through the end of the run.
    auto closeOverload = [this](int64_t end) {
        if (cfg_.overload.breaker.enabled)
            for (size_t qi = 0; qi < breakers_.size(); ++qi) {
                result_.queue_overload[qi].breaker_opens =
                    breakers_[qi].opens();
                result_.queue_overload[qi].breaker_closes =
                    breakers_[qi].closes();
            }
        if (cfg_.overload.brownout.enabled) {
            brownout_.level(end);
            result_.brownout_transitions = brownout_.transitions();
        }
    };
    if (dead_) {
        result_.end_ns = halt_ns_;
        closeOverload(halt_ns_);
        return std::move(result_);
    }
    int64_t end = std::max<int64_t>(busy_until_, 0);
    if (!arrivals_.empty())
        end = std::max(end, arrivals_.back().time_ns);
    result_.end_ns = end;
    noteDepthChange(end, 0); // close the depth integral
    closeOverload(end);
    return std::move(result_);
}

} // namespace rapid
