/**
 * @file
 * Image-classification benchmarks: VGG16, ResNet50, InceptionV3,
 * InceptionV4, MobileNetV1.
 */

#include "workloads/networks.hh"

#include "workloads/net_builder.hh"

namespace rapid {

Network
makeVgg16()
{
    NetBuilder b("vgg16", "image", 3, 224, 224);
    auto block = [&](const std::string &prefix, int64_t co, int convs) {
        for (int i = 0; i < convs; ++i)
            b.conv(prefix + "_" + std::to_string(i + 1), co, 3, 1, 1,
                   1, /*bn=*/false, /*act=*/true);
        b.maxPool(2, 2);
    };
    block("conv1", 64, 2);
    block("conv2", 128, 2);
    block("conv3", 256, 3);
    block("conv4", 512, 3);
    block("conv5", 512, 3);
    b.fc("fc6", 4096, true).fc("fc7", 4096, true).fc("fc8", 1000);
    b.aux("softmax", AuxKind::Softmax, 1000);
    return std::move(b).build();
}

Network
makeResnet50()
{
    NetBuilder b("resnet50", "image", 3, 224, 224);
    b.conv("conv1", 64, 7, 2, 3);
    b.maxPool(3, 2, 1);

    auto bottleneck = [&](const std::string &prefix, int64_t mid,
                          int64_t out, int64_t stride, bool downsample) {
        const int64_t in_c = b.channels();
        const int64_t in_h = b.height(), in_w = b.width();
        b.conv(prefix + ".conv1", mid, 1, 1, 0);
        b.conv(prefix + ".conv2", mid, 3, stride, 1);
        b.conv(prefix + ".conv3", out, 1, 1, 0, 1, true, false);
        if (downsample) {
            // Projection shortcut runs in parallel from the block
            // input; append it with explicit geometry.
            b.setGeometry(in_c, in_h, in_w);
            b.conv(prefix + ".downsample", out, 1, stride, 0, 1, true,
                   false);
            // Short-cut projection: kept at FP16 by the compiler.
            b.net().layers[b.net().layers.size() - 2]
                .accuracy_sensitive = true;
        }
        b.eltwiseAdd(prefix + ".add");
        b.aux(prefix + ".relu", AuxKind::ReLU,
              b.channels() * b.height() * b.width());
    };

    auto stage = [&](const std::string &prefix, int64_t mid,
                     int64_t out, int blocks, int64_t stride) {
        bottleneck(prefix + ".0", mid, out, stride, true);
        for (int i = 1; i < blocks; ++i)
            bottleneck(prefix + "." + std::to_string(i), mid, out, 1,
                       false);
    };

    stage("layer1", 64, 256, 3, 1);
    stage("layer2", 128, 512, 4, 2);
    stage("layer3", 256, 1024, 6, 2);
    stage("layer4", 512, 2048, 3, 2);
    b.globalPool();
    b.fc("fc", 1000);
    b.aux("softmax", AuxKind::Softmax, 1000);
    return std::move(b).build();
}

namespace {

/**
 * Helper for Inception-style multi-branch blocks: runs each branch
 * from the block's input geometry and concatenates channel-wise.
 * A branch is a list of conv specs {co, kh, kw, stride, pad}.
 */
struct ConvSpec
{
    int64_t co, kh, kw, stride, pad;
};

void
inceptionBlock(NetBuilder &b, const std::string &prefix,
               const std::vector<std::vector<ConvSpec>> &branches,
               int64_t pool_proj_co, bool pool_is_max,
               int64_t pool_stride = 1)
{
    const int64_t in_c = b.channels();
    const int64_t in_h = b.height(), in_w = b.width();
    int64_t total_co = 0;
    int64_t out_h = 0, out_w = 0;
    int branch_idx = 0;
    for (const auto &branch : branches) {
        b.setGeometry(in_c, in_h, in_w);
        int conv_idx = 0;
        for (const auto &cs : branch) {
            b.convRect(prefix + ".b" + std::to_string(branch_idx) +
                           "." + std::to_string(conv_idx),
                       cs.co, cs.kh, cs.kw, cs.stride, cs.pad);
            ++conv_idx;
        }
        total_co += b.channels();
        out_h = b.height();
        out_w = b.width();
        ++branch_idx;
    }
    // Pooling branch (3x3), optionally followed by a 1x1 projection.
    b.setGeometry(in_c, in_h, in_w);
    if (pool_is_max)
        b.maxPool(3, pool_stride, pool_stride == 1 ? 1 : 0);
    else
        b.avgPool(3, pool_stride, pool_stride == 1 ? 1 : 0);
    if (pool_proj_co > 0) {
        b.conv(prefix + ".pool_proj", pool_proj_co, 1, 1, 0);
        total_co += pool_proj_co;
    } else {
        total_co += in_c; // raw pooled channels pass through
    }
    rapid_assert(b.height() == out_h && b.width() == out_w,
                 prefix, ": branch geometry mismatch (", b.height(),
                 "x", b.width(), " vs ", out_h, "x", out_w, ")");
    b.setGeometry(total_co, out_h, out_w);
    b.aux(prefix + ".concat", AuxKind::DataMove,
          total_co * out_h * out_w);
}

} // namespace

Network
makeInceptionV3()
{
    NetBuilder b("inception3", "image", 3, 299, 299);
    b.conv("stem.conv1", 32, 3, 2, 0);
    b.conv("stem.conv2", 32, 3, 1, 0);
    b.conv("stem.conv3", 64, 3, 1, 1);
    b.maxPool(3, 2);
    b.conv("stem.conv4", 80, 1, 1, 0);
    b.conv("stem.conv5", 192, 3, 1, 0);
    b.maxPool(3, 2);

    // 3x Inception-A at 35x35.
    for (int i = 0; i < 3; ++i) {
        int64_t pool_co = (i == 0) ? 32 : 64;
        inceptionBlock(b, "mixedA" + std::to_string(i),
                       {{{64, 1, 1, 1, 0}},
                        {{48, 1, 1, 1, 0}, {64, 5, 5, 1, 2}},
                        {{64, 1, 1, 1, 0},
                         {96, 3, 3, 1, 1},
                         {96, 3, 3, 1, 1}}},
                       pool_co, /*pool_is_max=*/false);
    }

    // Reduction-A to 17x17.
    inceptionBlock(b, "reductionA",
                   {{{384, 3, 3, 2, 0}},
                    {{64, 1, 1, 1, 0},
                     {96, 3, 3, 1, 1},
                     {96, 3, 3, 2, 0}}},
                   /*pool_proj=*/0, /*pool_is_max=*/true,
                   /*pool_stride=*/2);

    // 4x Inception-B at 17x17 with factorized 7x7 convolutions.
    const int64_t ch7[4] = {128, 160, 160, 192};
    for (int i = 0; i < 4; ++i) {
        int64_t c7 = ch7[i];
        inceptionBlock(b, "mixedB" + std::to_string(i),
                       {{{192, 1, 1, 1, 0}},
                        {{c7, 1, 1, 1, 0},
                         {c7, 1, 7, 1, 3},
                         {192, 7, 1, 1, 3}},
                        {{c7, 1, 1, 1, 0},
                         {c7, 7, 1, 1, 3},
                         {c7, 1, 7, 1, 3},
                         {c7, 7, 1, 1, 3},
                         {192, 1, 7, 1, 3}}},
                       192, /*pool_is_max=*/false);
    }

    // Reduction-B to 8x8.
    inceptionBlock(b, "reductionB",
                   {{{192, 1, 1, 1, 0}, {320, 3, 3, 2, 0}},
                    {{192, 1, 1, 1, 0},
                     {192, 1, 7, 1, 3},
                     {192, 7, 1, 1, 3},
                     {192, 3, 3, 2, 0}}},
                   /*pool_proj=*/0, /*pool_is_max=*/true,
                   /*pool_stride=*/2);

    // 2x Inception-C at 8x8 (with the split 1x3/3x1 pairs modelled as
    // both convolutions, matching the published parameter counts).
    for (int i = 0; i < 2; ++i) {
        inceptionBlock(b, "mixedC" + std::to_string(i),
                       {{{320, 1, 1, 1, 0}},
                        {{384, 1, 1, 1, 0}, {384, 1, 3, 1, 1}},
                        {{384, 1, 1, 1, 0}, {384, 3, 1, 1, 1}},
                        {{448, 1, 1, 1, 0},
                         {384, 3, 3, 1, 1},
                         {384, 1, 3, 1, 1}},
                        {{448, 1, 1, 1, 0},
                         {384, 3, 3, 1, 1},
                         {384, 3, 1, 1, 1}}},
                       192, /*pool_is_max=*/false);
    }

    b.globalPool();
    b.fc("fc", 1000);
    b.aux("softmax", AuxKind::Softmax, 1000);
    return std::move(b).build();
}

Network
makeInceptionV4()
{
    NetBuilder b("inception4", "image", 3, 299, 299);
    // Stem (simplified to the sequential trunk with the published
    // channel counts; the two stem branch-concats are modelled as
    // their dominant branches plus concat data moves).
    b.conv("stem.conv1", 32, 3, 2, 0);
    b.conv("stem.conv2", 32, 3, 1, 0);
    b.conv("stem.conv3", 64, 3, 1, 1);
    b.maxPool(3, 2);
    b.conv("stem.conv4", 96, 3, 2, 0); // parallel to the pool; concat
    b.setGeometry(160, 73, 73);
    b.aux("stem.concat1", AuxKind::DataMove, 160 * 73 * 73);
    b.conv("stem.conv5", 64, 1, 1, 0);
    b.conv("stem.conv6", 96, 3, 1, 0);
    b.setGeometry(64, 73, 73);
    b.conv("stem.conv7", 64, 1, 1, 0);
    b.convRect("stem.conv8", 64, 7, 1, 1, 3);
    b.convRect("stem.conv8b", 64, 1, 7, 1, 3);
    b.conv("stem.conv9", 96, 3, 1, 0);
    b.setGeometry(192, 71, 71);
    b.aux("stem.concat2", AuxKind::DataMove, 192 * 71 * 71);
    b.conv("stem.conv10", 192, 3, 2, 0);
    b.setGeometry(384, 35, 35);
    b.aux("stem.concat3", AuxKind::DataMove, 384 * 35 * 35);

    // 4x Inception-A (out 384).
    for (int i = 0; i < 4; ++i) {
        inceptionBlock(b, "mixedA" + std::to_string(i),
                       {{{96, 1, 1, 1, 0}},
                        {{64, 1, 1, 1, 0}, {96, 3, 3, 1, 1}},
                        {{64, 1, 1, 1, 0},
                         {96, 3, 3, 1, 1},
                         {96, 3, 3, 1, 1}}},
                       96, /*pool_is_max=*/false);
    }

    // Reduction-A (out 1024).
    inceptionBlock(b, "reductionA",
                   {{{384, 3, 3, 2, 0}},
                    {{192, 1, 1, 1, 0},
                     {224, 3, 3, 1, 1},
                     {256, 3, 3, 2, 0}}},
                   0, true, 2);

    // 7x Inception-B (out 1024).
    for (int i = 0; i < 7; ++i) {
        inceptionBlock(b, "mixedB" + std::to_string(i),
                       {{{384, 1, 1, 1, 0}},
                        {{192, 1, 1, 1, 0},
                         {224, 1, 7, 1, 3},
                         {256, 7, 1, 1, 3}},
                        {{192, 1, 1, 1, 0},
                         {192, 7, 1, 1, 3},
                         {224, 1, 7, 1, 3},
                         {224, 7, 1, 1, 3},
                         {256, 1, 7, 1, 3}}},
                       128, /*pool_is_max=*/false);
    }

    // Reduction-B (out 1536).
    inceptionBlock(b, "reductionB",
                   {{{192, 1, 1, 1, 0}, {192, 3, 3, 2, 0}},
                    {{256, 1, 1, 1, 0},
                     {256, 1, 7, 1, 3},
                     {320, 7, 1, 1, 3},
                     {320, 3, 3, 2, 0}}},
                   0, true, 2);

    // 3x Inception-C (out 1536).
    for (int i = 0; i < 3; ++i) {
        inceptionBlock(b, "mixedC" + std::to_string(i),
                       {{{256, 1, 1, 1, 0}},
                        {{384, 1, 1, 1, 0}, {256, 1, 3, 1, 1}},
                        {{384, 1, 1, 1, 0}, {256, 3, 1, 1, 1}},
                        {{384, 1, 1, 1, 0},
                         {448, 1, 3, 1, 1},
                         {512, 3, 1, 1, 1},
                         {256, 3, 1, 1, 1}},
                        {{384, 1, 1, 1, 0},
                         {448, 1, 3, 1, 1},
                         {512, 3, 1, 1, 1},
                         {256, 1, 3, 1, 1}}},
                       256, /*pool_is_max=*/false);
    }

    b.globalPool();
    b.fc("fc", 1000);
    b.aux("softmax", AuxKind::Softmax, 1000);
    return std::move(b).build();
}

Network
makeMobilenetV1()
{
    NetBuilder b("mobilenetv1", "image", 3, 224, 224);
    b.conv("conv1", 32, 3, 2, 1);
    auto dsep = [&](const std::string &prefix, int64_t co,
                    int64_t stride) {
        b.dwConv(prefix + ".dw", 3, stride, 1);
        b.conv(prefix + ".pw", co, 1, 1, 0);
    };
    dsep("block1", 64, 1);
    dsep("block2", 128, 2);
    dsep("block3", 128, 1);
    dsep("block4", 256, 2);
    dsep("block5", 256, 1);
    dsep("block6", 512, 2);
    for (int i = 0; i < 5; ++i)
        dsep("block" + std::to_string(7 + i), 512, 1);
    dsep("block12", 1024, 2);
    dsep("block13", 1024, 1);
    b.globalPool();
    b.fc("fc", 1000);
    b.aux("softmax", AuxKind::Softmax, 1000);
    return std::move(b).build();
}

} // namespace rapid
