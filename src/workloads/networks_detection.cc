/**
 * @file
 * Object-detection benchmarks (COCO): SSD300, YoloV3, YoloV3-Tiny.
 */

#include "workloads/networks.hh"

#include "workloads/net_builder.hh"

namespace rapid {

Network
makeSsd300()
{
    NetBuilder b("ssd300", "detection", 3, 300, 300);
    // VGG16 backbone through conv5_3 (SSD variant: conv4 pool keeps
    // 38x38 via ceil mode; pool5 is 3x3 stride 1).
    auto vblock = [&](const std::string &prefix, int64_t co, int convs) {
        for (int i = 0; i < convs; ++i)
            b.conv(prefix + "_" + std::to_string(i + 1), co, 3, 1, 1,
                   1, false, true);
    };
    vblock("conv1", 64, 2);
    b.maxPool(2, 2);
    vblock("conv2", 128, 2);
    b.maxPool(2, 2);
    vblock("conv3", 256, 3);
    b.maxPool(2, 2, 1); // ceil mode: 38x38
    vblock("conv4", 512, 3);
    const int64_t c4_h = b.height(), c4_w = b.width(); // 38x38 head tap
    b.maxPool(2, 2);
    vblock("conv5", 512, 3);
    b.maxPool(3, 1, 1);
    // conv6 (dilated 3x3, modelled as 3x3) and conv7.
    b.conv("conv6", 1024, 3, 1, 1, 1, false, true);
    b.conv("conv7", 1024, 1, 1, 0, 1, false, true);
    const int64_t c7_h = b.height(), c7_w = b.width(); // 19x19

    // Extra feature layers.
    b.conv("conv8_1", 256, 1, 1, 0, 1, false, true);
    b.conv("conv8_2", 512, 3, 2, 1, 1, false, true); // 10x10
    const int64_t c8_h = b.height(), c8_w = b.width();
    b.conv("conv9_1", 128, 1, 1, 0, 1, false, true);
    b.conv("conv9_2", 256, 3, 2, 1, 1, false, true); // 5x5
    const int64_t c9_h = b.height(), c9_w = b.width();
    b.conv("conv10_1", 128, 1, 1, 0, 1, false, true);
    b.conv("conv10_2", 256, 3, 1, 0, 1, false, true); // 3x3
    const int64_t c10_h = b.height(), c10_w = b.width();
    b.conv("conv11_1", 128, 1, 1, 0, 1, false, true);
    b.conv("conv11_2", 256, 3, 1, 0, 1, false, true); // 1x1
    const int64_t c11_h = b.height(), c11_w = b.width();

    // Detection heads: per source, loc (boxes*4) + conf (boxes*21).
    struct HeadSpec
    {
        const char *name;
        int64_t c, h, w, boxes;
    };
    const HeadSpec heads[] = {
        {"conv4_3", 512, c4_h, c4_w, 4},
        {"conv7", 1024, c7_h, c7_w, 6},
        {"conv8_2", 512, c8_h, c8_w, 6},
        {"conv9_2", 256, c9_h, c9_w, 6},
        {"conv10_2", 256, c10_h, c10_w, 4},
        {"conv11_2", 256, c11_h, c11_w, 4},
    };
    int64_t total_boxes = 0;
    for (const auto &hs : heads) {
        b.setGeometry(hs.c, hs.h, hs.w);
        b.conv(std::string(hs.name) + ".loc", hs.boxes * 4, 3, 1, 1, 1,
               false, false);
        b.net().layers.back().accuracy_sensitive = true;
        b.setGeometry(hs.c, hs.h, hs.w);
        b.conv(std::string(hs.name) + ".conf", hs.boxes * 21, 3, 1, 1,
               1, false, false);
        b.net().layers.back().accuracy_sensitive = true;
        total_boxes += hs.boxes * hs.h * hs.w;
    }
    // Per-box confidence softmax + box decode (postprocessing).
    b.aux("softmax", AuxKind::Softmax, total_boxes * 21);
    b.aux("decode", AuxKind::Eltwise, total_boxes * 4);
    return std::move(b).build();
}

namespace {

/** Darknet conv: conv + BN + leaky ReLU (costed like ReLU). */
void
dnConv(NetBuilder &b, const std::string &name, int64_t co, int64_t k,
       int64_t stride)
{
    b.conv(name, co, k, stride, k / 2);
}

/** Darknet-53 residual unit: 1x1 squeeze + 3x3 expand + add. */
void
dnResidual(NetBuilder &b, const std::string &prefix, int64_t mid)
{
    dnConv(b, prefix + ".1x1", mid, 1, 1);
    dnConv(b, prefix + ".3x3", mid * 2, 3, 1);
    b.eltwiseAdd(prefix + ".add");
}

} // namespace

Network
makeYolov3()
{
    NetBuilder b("yolov3", "detection", 3, 416, 416);
    // Darknet-53 backbone.
    dnConv(b, "conv0", 32, 3, 1);
    dnConv(b, "down1", 64, 3, 2);
    dnResidual(b, "res1.0", 32);
    dnConv(b, "down2", 128, 3, 2);
    for (int i = 0; i < 2; ++i)
        dnResidual(b, "res2." + std::to_string(i), 64);
    dnConv(b, "down3", 256, 3, 2);
    for (int i = 0; i < 8; ++i)
        dnResidual(b, "res3." + std::to_string(i), 128);
    const int64_t s3_h = b.height(), s3_w = b.width(); // 52x52 route
    dnConv(b, "down4", 512, 3, 2);
    for (int i = 0; i < 8; ++i)
        dnResidual(b, "res4." + std::to_string(i), 256);
    const int64_t s4_h = b.height(), s4_w = b.width(); // 26x26 route
    dnConv(b, "down5", 1024, 3, 2);
    for (int i = 0; i < 4; ++i)
        dnResidual(b, "res5." + std::to_string(i), 512);

    // Head 1 at 13x13.
    auto head_convs = [&](const std::string &prefix, int64_t mid) {
        dnConv(b, prefix + ".c1", mid, 1, 1);
        dnConv(b, prefix + ".c2", mid * 2, 3, 1);
        dnConv(b, prefix + ".c3", mid, 1, 1);
        dnConv(b, prefix + ".c4", mid * 2, 3, 1);
        dnConv(b, prefix + ".c5", mid, 1, 1);
    };
    head_convs("head1", 512);
    const int64_t h1_h = b.height(), h1_w = b.width();
    dnConv(b, "head1.c6", 1024, 3, 1);
    b.conv("head1.out", 255, 1, 1, 0, 1, false, false);
    b.net().layers.back().accuracy_sensitive = true;

    // Head 2: route from head1.c5, 1x1 256, upsample, concat with s4.
    b.setGeometry(512, h1_h, h1_w);
    dnConv(b, "head2.route", 256, 1, 1);
    b.upsample(2);
    b.setGeometry(256 + 512, s4_h, s4_w);
    b.aux("head2.concat", AuxKind::DataMove, (256 + 512) * s4_h * s4_w);
    head_convs("head2", 256);
    const int64_t h2_h = b.height(), h2_w = b.width();
    dnConv(b, "head2.c6", 512, 3, 1);
    b.conv("head2.out", 255, 1, 1, 0, 1, false, false);
    b.net().layers.back().accuracy_sensitive = true;

    // Head 3: route from head2.c5, 1x1 128, upsample, concat with s3.
    b.setGeometry(256, h2_h, h2_w);
    dnConv(b, "head3.route", 128, 1, 1);
    b.upsample(2);
    b.setGeometry(128 + 256, s3_h, s3_w);
    b.aux("head3.concat", AuxKind::DataMove, (128 + 256) * s3_h * s3_w);
    head_convs("head3", 128);
    dnConv(b, "head3.c6", 256, 3, 1);
    b.conv("head3.out", 255, 1, 1, 0, 1, false, false);
    b.net().layers.back().accuracy_sensitive = true;

    // YOLO decode: sigmoids over all three scales' outputs.
    b.aux("yolo.decode", AuxKind::Sigmoid,
          255 * (13 * 13 + 26 * 26 + 52 * 52));
    return std::move(b).build();
}

Network
makeYolov3Tiny()
{
    NetBuilder b("yolov3-tiny", "detection", 3, 416, 416);
    dnConv(b, "conv0", 16, 3, 1);
    b.maxPool(2, 2);
    dnConv(b, "conv1", 32, 3, 1);
    b.maxPool(2, 2);
    dnConv(b, "conv2", 64, 3, 1);
    b.maxPool(2, 2);
    dnConv(b, "conv3", 128, 3, 1);
    b.maxPool(2, 2);
    dnConv(b, "conv4", 256, 3, 1);
    const int64_t s4_h = b.height(), s4_w = b.width(); // 26x26 route
    b.maxPool(2, 2);
    dnConv(b, "conv5", 512, 3, 1);
    b.maxPool(2, 1, 1); // stride-1 pool keeps 13x13
    dnConv(b, "conv6", 1024, 3, 1);
    dnConv(b, "conv7", 256, 1, 1);
    const int64_t h1_h = b.height(), h1_w = b.width();
    dnConv(b, "head1.c", 512, 3, 1);
    b.conv("head1.out", 255, 1, 1, 0, 1, false, false);
    b.net().layers.back().accuracy_sensitive = true;

    b.setGeometry(256, h1_h, h1_w);
    dnConv(b, "head2.route", 128, 1, 1);
    b.upsample(2);
    b.setGeometry(128 + 256, s4_h, s4_w);
    b.aux("head2.concat", AuxKind::DataMove, (128 + 256) * s4_h * s4_w);
    dnConv(b, "head2.c", 256, 3, 1);
    b.conv("head2.out", 255, 1, 1, 0, 1, false, false);
    b.net().layers.back().accuracy_sensitive = true;

    b.aux("yolo.decode", AuxKind::Sigmoid,
          255 * (13 * 13 + 26 * 26));
    return std::move(b).build();
}

} // namespace rapid
