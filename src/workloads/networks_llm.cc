/**
 * @file
 * Decoder-only transformer shapes for the LLM serving study: a
 * prefill network (prompt-length GEMMs, the BERT shape family) and a
 * single decode step (GEMV workloads against the KV history). The
 * decode step is the unit the continuous batcher schedules; its MAC
 * count per layer is 4*d^2 + 2*d*d_ff + 2*ctx*d plus d*vocab for the
 * LM head, pinned by hand in tests/test_llm.cc.
 */

#include "workloads/networks.hh"

#include "common/error.hh"
#include "workloads/net_builder.hh"

namespace rapid {

namespace {

void
checkModel(const LlmModelConfig &m)
{
    RAPID_CHECK_CONFIG(m.d_model > 0 && m.heads > 0 && m.layers > 0 &&
                           m.d_ff > 0 && m.vocab > 0 &&
                           m.max_context > 0,
                       "LLM model '", m.name,
                       "': all dimensions must be positive");
    RAPID_CHECK_CONFIG(m.d_model % m.heads == 0, "LLM model '", m.name,
                       "': d_model ", m.d_model,
                       " not divisible by heads ", m.heads);
}

} // namespace

LlmModelConfig
llmModelByName(const std::string &name)
{
    // llm-micro keeps test arithmetic hand-checkable; llm-small is
    // big enough that the KV working set crosses the scratchpad
    // capacity within the swept context range.
    if (name == "llm-micro")
        return {"llm-micro", 256, 4, 4, 1024, 8192, 2048};
    if (name == "llm-small")
        return {"llm-small", 512, 8, 8, 2048, 16384, 4096};
    rapid_fatal("unknown LLM model '", name, "'");
}

Network
makeLlmPrefill(const LlmModelConfig &m, int64_t prompt_tokens)
{
    checkModel(m);
    RAPID_CHECK_ARG(prompt_tokens > 0 &&
                        prompt_tokens <= m.max_context,
                    "prefill: prompt ", prompt_tokens,
                    " outside (0, ", m.max_context, "]");
    const int64_t d = m.d_model, hd = m.headDim();
    NetBuilder b(m.name + ".prefill", "nlp", 1, 1, 1);
    b.aux("embedding", AuxKind::Embedding, prompt_tokens * d);
    for (int64_t l = 0; l < m.layers; ++l) {
        const std::string p = "layer" + std::to_string(l);
        b.gemm(p + ".qkv", prompt_tokens, d, 3 * d);
        b.gemm(p + ".scores", prompt_tokens, hd, prompt_tokens,
               m.heads);
        b.aux(p + ".softmax", AuxKind::Softmax,
              m.heads * prompt_tokens * prompt_tokens);
        b.gemm(p + ".context", prompt_tokens, prompt_tokens, hd,
               m.heads);
        b.gemm(p + ".out_proj", prompt_tokens, d, d);
        b.aux(p + ".add1", AuxKind::Eltwise, prompt_tokens * d);
        b.aux(p + ".ln1", AuxKind::LayerNorm, prompt_tokens * d);
        b.gemm(p + ".ffn1", prompt_tokens, d, m.d_ff);
        b.aux(p + ".gelu", AuxKind::Gelu, prompt_tokens * m.d_ff);
        b.gemm(p + ".ffn2", prompt_tokens, m.d_ff, d);
        b.aux(p + ".add2", AuxKind::Eltwise, prompt_tokens * d);
        b.aux(p + ".ln2", AuxKind::LayerNorm, prompt_tokens * d);
    }
    return std::move(b).build();
}

Network
makeLlmDecodeStep(const LlmModelConfig &m, int64_t context_tokens)
{
    checkModel(m);
    RAPID_CHECK_ARG(context_tokens > 0 &&
                        context_tokens <= m.max_context,
                    "decode step: context ", context_tokens,
                    " outside (0, ", m.max_context, "]");
    const int64_t d = m.d_model, hd = m.headDim(),
                  ctx = context_tokens;
    NetBuilder b(m.name + ".decode", "nlp", 1, 1, 1);
    for (int64_t l = 0; l < m.layers; ++l) {
        const std::string p = "layer" + std::to_string(l);
        b.gemm(p + ".qkv", 1, d, 3 * d);
        // Streamed-KV attention: the (hd x ctx) score operand and the
        // (ctx x hd) context operand are the layer's K and V rows.
        b.gemm(p + ".scores", 1, hd, ctx, m.heads);
        b.aux(p + ".softmax", AuxKind::Softmax, m.heads * ctx);
        b.gemm(p + ".context", 1, ctx, hd, m.heads);
        b.gemm(p + ".out_proj", 1, d, d);
        b.aux(p + ".add1", AuxKind::Eltwise, d);
        b.aux(p + ".ln1", AuxKind::LayerNorm, d);
        b.gemm(p + ".ffn1", 1, d, m.d_ff);
        b.aux(p + ".gelu", AuxKind::Gelu, m.d_ff);
        b.gemm(p + ".ffn2", 1, m.d_ff, d);
        b.aux(p + ".add2", AuxKind::Eltwise, d);
        b.aux(p + ".ln2", AuxKind::LayerNorm, d);
    }
    b.gemm("lm_head", 1, d, m.vocab);
    b.aux("sample", AuxKind::Softmax, m.vocab);
    return std::move(b).build();
}

} // namespace rapid
