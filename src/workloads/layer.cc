#include "workloads/layer.hh"

#include <algorithm>

namespace rapid {

int64_t
Layer::outH() const
{
    rapid_assert(type == LayerType::Conv, "outH on non-conv layer ",
                 name);
    return (h + 2 * pad_h - kh) / stride + 1;
}

int64_t
Layer::outW() const
{
    rapid_assert(type == LayerType::Conv, "outW on non-conv layer ",
                 name);
    return (w + 2 * pad_w - kw) / stride + 1;
}

int64_t
Layer::macsPerSample() const
{
    // Builder validation (net_builder.cc) rejects collapsed feature
    // maps with a user-facing error; by the time work is counted the
    // geometry must be sane.
    rapid_dassert(type != LayerType::Conv
                      || (outH() > 0 && outW() > 0 && groups > 0),
                  "invalid conv geometry in layer ", name);
    switch (type) {
      case LayerType::Conv:
        return repeat * outH() * outW() * co * (ci / groups) * kh * kw;
      case LayerType::Gemm:
        return repeat * gm * gk * gn;
      case LayerType::Aux:
        return 0;
    }
    return 0;
}

int64_t
Layer::weightElems() const
{
    switch (type) {
      case LayerType::Conv:
        // Repeated conv layers (unrolled loops) share their weights.
        return co * (ci / groups) * kh * kw;
      case LayerType::Gemm:
        return gk * gn;
      case LayerType::Aux:
        return 0;
    }
    return 0;
}

int64_t
Layer::inputElemsPerSample() const
{
    switch (type) {
      case LayerType::Conv:
        return repeat * ci * h * w;
      case LayerType::Gemm:
        return repeat * gm * gk;
      case LayerType::Aux:
        return repeat * aux_elems;
    }
    return 0;
}

int64_t
Layer::outputElemsPerSample() const
{
    switch (type) {
      case LayerType::Conv:
        return repeat * co * outH() * outW();
      case LayerType::Gemm:
        return repeat * gm * gn;
      case LayerType::Aux:
        return repeat * aux_elems;
    }
    return 0;
}

int64_t
Network::macsPerSample() const
{
    int64_t total = 0;
    for (const auto &l : layers)
        total += l.macsPerSample();
    return total;
}

int64_t
Network::weightElems() const
{
    int64_t total = 0;
    for (const auto &l : layers)
        total += l.weightElems();
    return total;
}

int64_t
Network::numComputeLayers() const
{
    int64_t n = 0;
    for (const auto &l : layers)
        if (l.isCompute())
            n += l.repeat;
    return n;
}

int64_t
Network::peakActivationElems() const
{
    int64_t peak = 0;
    for (const auto &l : layers)
        if (l.isCompute())
            peak = std::max(peak, l.outputElemsPerSample() / l.repeat);
    return peak;
}

double
auxOpsPerElement(AuxKind kind)
{
    // Effective SFU operations per produced element, reflecting the
    // accurate/fast split of Section III-B (transcendentals use the
    // fast polynomial approximations).
    switch (kind) {
      case AuxKind::ReLU: return 1.0;
      case AuxKind::Sigmoid: return 4.0;
      case AuxKind::Tanh: return 4.0;
      case AuxKind::Gelu: return 6.0;
      case AuxKind::BatchNorm: return 2.0;
      case AuxKind::LayerNorm: return 6.0;
      case AuxKind::Softmax: return 5.0;
      case AuxKind::MaxPool: return 1.0; ///< per window element
      case AuxKind::AvgPool: return 1.0;
      case AuxKind::Eltwise: return 1.0;
      case AuxKind::Embedding: return 1.0;
      case AuxKind::Upsample: return 1.0;
      case AuxKind::DataMove: return 1.0;
    }
    return 1.0;
}

std::string
auxKindName(AuxKind kind)
{
    switch (kind) {
      case AuxKind::ReLU: return "relu";
      case AuxKind::Sigmoid: return "sigmoid";
      case AuxKind::Tanh: return "tanh";
      case AuxKind::Gelu: return "gelu";
      case AuxKind::BatchNorm: return "batchnorm";
      case AuxKind::LayerNorm: return "layernorm";
      case AuxKind::Softmax: return "softmax";
      case AuxKind::MaxPool: return "maxpool";
      case AuxKind::AvgPool: return "avgpool";
      case AuxKind::Eltwise: return "eltwise";
      case AuxKind::Embedding: return "embedding";
      case AuxKind::Upsample: return "upsample";
      case AuxKind::DataMove: return "datamove";
    }
    return "?";
}

} // namespace rapid
