/**
 * @file
 * Builders for the 11 benchmark networks of Section V-A:
 * image classification (VGG16, ResNet50, InceptionV3, InceptionV4,
 * MobileNetV1), object detection (SSD300, YoloV3, YoloV3-Tiny),
 * natural language (BERT seq-384, 2-layer LSTM), and speech
 * (4-layer bidirectional LSTM).
 *
 * Shapes follow the standard published architectures; where a paper
 * hyper-parameter is ambiguous the choice is documented inline and in
 * DESIGN.md. Each builder returns per-sample layer descriptors; batch
 * is applied by the performance model.
 */

#ifndef RAPID_WORKLOADS_NETWORKS_HH
#define RAPID_WORKLOADS_NETWORKS_HH

#include <vector>

#include "workloads/layer.hh"

namespace rapid {

Network makeVgg16();
Network makeResnet50();
Network makeInceptionV3();
Network makeInceptionV4();
Network makeMobilenetV1();

Network makeSsd300();
Network makeYolov3();
Network makeYolov3Tiny();

/** BERT-base encoder, sequence length 384. */
Network makeBert(int64_t seq_len = 384);

/** 2-layer LSTM language model (PTB large config: hidden 1500). */
Network makeLstmPtb(int64_t seq_len = 35);

/** 4-layer bidirectional LSTM acoustic model (SWB300). */
Network makeBiLstmSwb(int64_t seq_len = 300);

/**
 * Decoder-only transformer shape for the LLM serving study
 * (ROADMAP item 4). Sized so the per-layer KV working set interacts
 * visibly with the chip's corelet scratchpad capacity — these are
 * study models, not published checkpoints.
 */
struct LlmModelConfig
{
    std::string name;
    int64_t d_model = 0;
    int64_t heads = 0;
    int64_t layers = 0;
    int64_t d_ff = 0;
    int64_t vocab = 0;
    int64_t max_context = 0; ///< longest supported prompt + output

    int64_t headDim() const { return d_model / heads; }
};

/** "llm-micro" (tests) or "llm-small" (bench); fatal on others. */
LlmModelConfig llmModelByName(const std::string &name);

/**
 * Prefill pass: every prompt token through every layer as seq-length
 * GEMMs, exactly the BERT encoder shape family (causal masking does
 * not change the dense GEMM cost model).
 */
Network makeLlmPrefill(const LlmModelConfig &m, int64_t prompt_tokens);

/**
 * One decode step with @p context_tokens of KV history: per-layer
 * GEMV workloads (m == 1) for QKV projection, attention scores and
 * context against the streamed KV cache, output projection and FFN,
 * plus the LM head. The attention GEMMs' "weights" are the KV rows —
 * that is the per-token KV streaming cost.
 */
Network makeLlmDecodeStep(const LlmModelConfig &m,
                          int64_t context_tokens);

/** All 11 benchmarks in the paper's presentation order. */
std::vector<Network> allBenchmarks();

/** Look up a benchmark by name; fatal on unknown names. */
Network benchmarkByName(const std::string &name);

/**
 * The pruned-model variants used for the sparsity-aware throttling
 * study (Section V-D): per-layer weight sparsity profiles shaped like
 * the cited pruning results [55-58] (early layers denser, later
 * layers sparser), with the given network-average sparsity.
 */
void applySparsityProfile(Network &net, double average_sparsity);

/** The pruned benchmark set of Figure 16(b) with network averages. */
std::vector<std::pair<Network, double>> prunedBenchmarks();

} // namespace rapid

#endif // RAPID_WORKLOADS_NETWORKS_HH
