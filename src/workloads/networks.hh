/**
 * @file
 * Builders for the 11 benchmark networks of Section V-A:
 * image classification (VGG16, ResNet50, InceptionV3, InceptionV4,
 * MobileNetV1), object detection (SSD300, YoloV3, YoloV3-Tiny),
 * natural language (BERT seq-384, 2-layer LSTM), and speech
 * (4-layer bidirectional LSTM).
 *
 * Shapes follow the standard published architectures; where a paper
 * hyper-parameter is ambiguous the choice is documented inline and in
 * DESIGN.md. Each builder returns per-sample layer descriptors; batch
 * is applied by the performance model.
 */

#ifndef RAPID_WORKLOADS_NETWORKS_HH
#define RAPID_WORKLOADS_NETWORKS_HH

#include <vector>

#include "workloads/layer.hh"

namespace rapid {

Network makeVgg16();
Network makeResnet50();
Network makeInceptionV3();
Network makeInceptionV4();
Network makeMobilenetV1();

Network makeSsd300();
Network makeYolov3();
Network makeYolov3Tiny();

/** BERT-base encoder, sequence length 384. */
Network makeBert(int64_t seq_len = 384);

/** 2-layer LSTM language model (PTB large config: hidden 1500). */
Network makeLstmPtb(int64_t seq_len = 35);

/** 4-layer bidirectional LSTM acoustic model (SWB300). */
Network makeBiLstmSwb(int64_t seq_len = 300);

/** All 11 benchmarks in the paper's presentation order. */
std::vector<Network> allBenchmarks();

/** Look up a benchmark by name; fatal on unknown names. */
Network benchmarkByName(const std::string &name);

/**
 * The pruned-model variants used for the sparsity-aware throttling
 * study (Section V-D): per-layer weight sparsity profiles shaped like
 * the cited pruning results [55-58] (early layers denser, later
 * layers sparser), with the given network-average sparsity.
 */
void applySparsityProfile(Network &net, double average_sparsity);

/** The pruned benchmark set of Figure 16(b) with network averages. */
std::vector<std::pair<Network, double>> prunedBenchmarks();

} // namespace rapid

#endif // RAPID_WORKLOADS_NETWORKS_HH
