#include "workloads/net_builder.hh"

#include <algorithm>

namespace rapid {

NetBuilder::NetBuilder(std::string name, std::string domain,
                       int64_t channels, int64_t height, int64_t width)
    : c_(channels), h_(height), w_(width)
{
    net_.name = std::move(name);
    net_.domain = std::move(domain);
}

NetBuilder &
NetBuilder::convRect(const std::string &name, int64_t co, int64_t kh,
                     int64_t kw, int64_t stride, int64_t pad,
                     int64_t groups, bool bn, bool act)
{
    Layer l;
    l.name = name;
    l.type = LayerType::Conv;
    l.ci = c_;
    l.co = co;
    l.h = h_;
    l.w = w_;
    l.kh = kh;
    l.kw = kw;
    l.stride = stride;
    // A single pad value means framework-style "same"-intent padding;
    // clamp per dimension so 1x7 / 7x1 factorized kernels pad only
    // along their long axis.
    l.pad_h = std::min<int64_t>(pad, (kh - 1) / 2);
    l.pad_w = std::min<int64_t>(pad, (kw - 1) / 2);
    l.groups = groups;
    rapid_assert(l.outH() > 0 && l.outW() > 0,
                 "conv ", name, " collapses the feature map");
    const int64_t oh = l.outH(), ow = l.outW();
    net_.layers.push_back(l);
    c_ = co;
    h_ = oh;
    w_ = ow;
    const int64_t out_elems = co * oh * ow;
    if (bn)
        aux(name + ".bn", AuxKind::BatchNorm, out_elems);
    if (act)
        aux(name + ".relu", AuxKind::ReLU, out_elems);
    return *this;
}

NetBuilder &
NetBuilder::conv(const std::string &name, int64_t co, int64_t k,
                 int64_t stride, int64_t pad, int64_t groups, bool bn,
                 bool act)
{
    return convRect(name, co, k, k, stride, pad, groups, bn, act);
}

NetBuilder &
NetBuilder::dwConv(const std::string &name, int64_t k, int64_t stride,
                   int64_t pad)
{
    return convRect(name, c_, k, k, stride, pad, /*groups=*/c_);
}

NetBuilder &
NetBuilder::maxPool(int64_t k, int64_t stride, int64_t pad)
{
    const int64_t oh = (h_ + 2 * pad - k) / stride + 1;
    const int64_t ow = (w_ + 2 * pad - k) / stride + 1;
    // Cost scales with window touches: out elems * k^2.
    aux("maxpool", AuxKind::MaxPool, c_ * oh * ow * k * k);
    h_ = oh;
    w_ = ow;
    return *this;
}

NetBuilder &
NetBuilder::avgPool(int64_t k, int64_t stride, int64_t pad)
{
    const int64_t oh = (h_ + 2 * pad - k) / stride + 1;
    const int64_t ow = (w_ + 2 * pad - k) / stride + 1;
    aux("avgpool", AuxKind::AvgPool, c_ * oh * ow * k * k);
    h_ = oh;
    w_ = ow;
    return *this;
}

NetBuilder &
NetBuilder::globalPool()
{
    aux("globalpool", AuxKind::AvgPool, c_ * h_ * w_);
    h_ = 1;
    w_ = 1;
    return *this;
}

NetBuilder &
NetBuilder::fc(const std::string &name, int64_t out, bool act)
{
    Layer l;
    l.name = name;
    l.type = LayerType::Gemm;
    l.gm = 1;
    l.gk = c_ * h_ * w_;
    l.gn = out;
    net_.layers.push_back(l);
    c_ = out;
    h_ = 1;
    w_ = 1;
    if (act)
        aux(name + ".relu", AuxKind::ReLU, out);
    return *this;
}

NetBuilder &
NetBuilder::gemm(const std::string &name, int64_t m, int64_t k,
                 int64_t n, int64_t repeat)
{
    Layer l;
    l.name = name;
    l.type = LayerType::Gemm;
    l.gm = m;
    l.gk = k;
    l.gn = n;
    l.repeat = repeat;
    net_.layers.push_back(l);
    return *this;
}

NetBuilder &
NetBuilder::aux(const std::string &name, AuxKind kind, int64_t elems,
                int64_t repeat)
{
    Layer l;
    l.name = name;
    l.type = LayerType::Aux;
    l.aux_kind = kind;
    l.aux_elems = elems;
    l.repeat = repeat;
    net_.layers.push_back(l);
    return *this;
}

NetBuilder &
NetBuilder::eltwiseAdd(const std::string &name)
{
    return aux(name, AuxKind::Eltwise, c_ * h_ * w_);
}

NetBuilder &
NetBuilder::upsample(int64_t factor)
{
    h_ *= factor;
    w_ *= factor;
    return aux("upsample", AuxKind::Upsample, c_ * h_ * w_);
}

NetBuilder &
NetBuilder::setGeometry(int64_t channels, int64_t height, int64_t width)
{
    c_ = channels;
    h_ = height;
    w_ = width;
    return *this;
}

Network
NetBuilder::build() &&
{
    rapid_assert(!net_.layers.empty(), "empty network ", net_.name);
    return std::move(net_);
}

} // namespace rapid
