/**
 * @file
 * Workload representation: a DNN is a sequence of layer descriptors
 * (Conv / GEMM / auxiliary). Shapes are per input sample; the
 * performance model scales by batch size at evaluation time. Aux
 * layers carry an element count and a kind, which maps to a per-
 * element SFU cost (accurate vs fast approximations, Section III-B).
 */

#ifndef RAPID_WORKLOADS_LAYER_HH
#define RAPID_WORKLOADS_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace rapid {

/** Broad class of a layer for mapping purposes. */
enum class LayerType
{
    Conv, ///< 2-D convolution (runs on the MPE array)
    Gemm, ///< matrix multiply (runs on the MPE array)
    Aux,  ///< auxiliary elementwise/reduction op (runs on the SFU)
};

/** Auxiliary operation kinds with distinct SFU cost profiles. */
enum class AuxKind
{
    ReLU,
    Sigmoid,   ///< approximated ("fast version") on the SFU
    Tanh,
    Gelu,
    BatchNorm, ///< inference-form scale+shift
    LayerNorm,
    Softmax,
    MaxPool,
    AvgPool,
    Eltwise,   ///< residual adds, gate products
    Embedding, ///< table lookup + copy
    Upsample,
    DataMove,  ///< shuffle / permute / transpose / concat
};

/** One layer of a network. */
struct Layer
{
    std::string name;
    LayerType type = LayerType::Aux;

    // --- Conv fields (valid when type == Conv) ---
    int64_t ci = 0, co = 0;  ///< input / output channels
    int64_t h = 0, w = 0;    ///< input spatial size
    int64_t kh = 1, kw = 1;  ///< kernel size
    int64_t stride = 1;
    int64_t pad_h = 0, pad_w = 0; ///< per-dimension padding
    int64_t groups = 1;      ///< groups == ci for depthwise convs

    // --- GEMM fields (valid when type == Gemm) ---
    int64_t gm = 0; ///< rows per sample (seq length, or 1)
    int64_t gk = 0;
    int64_t gn = 0;

    // --- Aux fields (valid when type == Aux) ---
    AuxKind aux_kind = AuxKind::ReLU;
    int64_t aux_elems = 0; ///< output elements per sample

    /// Identical consecutive instances (e.g. LSTM timesteps).
    int64_t repeat = 1;

    /// Weight sparsity of a pruned model variant (Section V-D).
    double weight_sparsity = 0.0;

    /// Layers the paper keeps at high precision beyond the first/last
    /// rule: short-cut projection paths and final output heads
    /// (Section I: "selected ones such as first and last layers,
    /// short-cut paths etc. require high precision").
    bool accuracy_sensitive = false;

    int64_t outH() const;
    int64_t outW() const;

    /** Multiply-accumulate count per input sample (Conv/Gemm only). */
    int64_t macsPerSample() const;

    /** Weight (parameter) element count, zero for Aux layers. */
    int64_t weightElems() const;

    /** Input activation elements per sample. */
    int64_t inputElemsPerSample() const;

    /** Output activation elements per sample. */
    int64_t outputElemsPerSample() const;

    bool isCompute() const { return type != LayerType::Aux; }
};

/** A whole benchmark network. */
struct Network
{
    std::string name;
    std::string domain; ///< "image", "detection", "nlp", "speech"
    std::vector<Layer> layers;

    int64_t macsPerSample() const;
    int64_t weightElems() const;
    int64_t numComputeLayers() const;

    /** Largest single-layer activation footprint (elements). */
    int64_t peakActivationElems() const;
};

/** SFU operations per element for an auxiliary kind. */
double auxOpsPerElement(AuxKind kind);

/** Human-readable aux kind name. */
std::string auxKindName(AuxKind kind);

} // namespace rapid

#endif // RAPID_WORKLOADS_LAYER_HH
