/**
 * @file
 * Language and speech benchmarks: BERT-base (seq 384), the 2-layer
 * PTB LSTM, and the 4-layer bidirectional SWB300 LSTM, plus the
 * benchmark registry and pruned-model sparsity profiles.
 */

#include "workloads/networks.hh"

#include <algorithm>
#include <cmath>

#include "workloads/net_builder.hh"

namespace rapid {

Network
makeBert(int64_t seq_len)
{
    // BERT-base: 12 layers, hidden 768, 12 heads, FFN 3072.
    const int64_t hid = 768, heads = 12, ffn = 3072;
    const int64_t head_dim = hid / heads;
    NetBuilder b("bert", "nlp", 1, 1, 1);

    b.aux("embedding", AuxKind::Embedding, seq_len * hid);
    b.aux("embed.ln", AuxKind::LayerNorm, seq_len * hid);

    for (int l = 0; l < 12; ++l) {
        const std::string p = "layer" + std::to_string(l);
        // Fused QKV projection.
        b.gemm(p + ".qkv", seq_len, hid, 3 * hid);
        // Attention scores and context, one GEMM per head.
        b.gemm(p + ".scores", seq_len, head_dim, seq_len, heads);
        b.aux(p + ".softmax", AuxKind::Softmax,
              heads * seq_len * seq_len);
        b.gemm(p + ".context", seq_len, seq_len, head_dim, heads);
        b.gemm(p + ".out_proj", seq_len, hid, hid);
        b.aux(p + ".add1", AuxKind::Eltwise, seq_len * hid);
        b.aux(p + ".ln1", AuxKind::LayerNorm, seq_len * hid);
        // Feed-forward block.
        b.gemm(p + ".ffn1", seq_len, hid, ffn);
        b.aux(p + ".gelu", AuxKind::Gelu, seq_len * ffn);
        b.gemm(p + ".ffn2", seq_len, ffn, hid);
        b.aux(p + ".add2", AuxKind::Eltwise, seq_len * hid);
        b.aux(p + ".ln2", AuxKind::LayerNorm, seq_len * hid);
    }
    // Task head (translation/classification projection).
    b.gemm("head", seq_len, hid, hid);
    b.aux("head.act", AuxKind::Tanh, seq_len * hid);
    return std::move(b).build();
}

Network
makeLstmPtb(int64_t seq_len)
{
    // PTB "medium" configuration (Zaremba et al.): 2 layers, hidden
    // 650, vocab 10000, embedding width 650, unrolled for seq_len
    // steps. Each step of each layer is one gate GEMM
    // (1, in+hid) x (in+hid, 4*hid) plus the gate nonlinearities and
    // elementwise cell updates. The medium config is the common
    // benchmark instance and lets the INT4 weights stay L1-resident,
    // consistent with the paper's batch-1 LSTM efficiencies.
    const int64_t hid = 650, vocab = 10000;
    NetBuilder b("lstm", "nlp", 1, 1, 1);

    b.aux("embedding", AuxKind::Embedding, seq_len * hid);
    for (int l = 0; l < 2; ++l) {
        const std::string p = "lstm" + std::to_string(l);
        const int64_t in = hid; // embedding width == hidden width
        b.gemm(p + ".gates", 1, in + hid, 4 * hid, seq_len);
        b.aux(p + ".sigmoid", AuxKind::Sigmoid, 3 * hid, seq_len);
        b.aux(p + ".tanh", AuxKind::Tanh, 2 * hid, seq_len);
        b.aux(p + ".cell", AuxKind::Eltwise, 3 * hid, seq_len);
    }
    // Output projection to the vocabulary each step.
    b.gemm("proj", 1, hid, vocab, seq_len);
    b.aux("softmax", AuxKind::Softmax, vocab, seq_len);
    return std::move(b).build();
}

Network
makeBiLstmSwb(int64_t seq_len)
{
    // SWB300 acoustic model: 4 bidirectional layers, hidden 1024 per
    // direction, 140-dim fused acoustic features, ~9000 output
    // targets (documented assumption; see DESIGN.md).
    const int64_t hid = 1024, feat = 140, targets = 9000;
    NetBuilder b("speech", "speech", 1, 1, 1);

    for (int l = 0; l < 4; ++l) {
        const std::string p = "bilstm" + std::to_string(l);
        const int64_t in = (l == 0) ? feat : 2 * hid;
        // Forward and backward directions each run per timestep.
        for (const char *dir : {"fwd", "bwd"}) {
            b.gemm(p + "." + dir + ".gates", 1, in + hid, 4 * hid,
                   seq_len);
            b.aux(p + "." + dir + ".sigmoid", AuxKind::Sigmoid,
                  3 * hid, seq_len);
            b.aux(p + "." + dir + ".tanh", AuxKind::Tanh, 2 * hid,
                  seq_len);
            b.aux(p + "." + dir + ".cell", AuxKind::Eltwise, 3 * hid,
                  seq_len);
        }
        b.aux(p + ".concat", AuxKind::DataMove, 2 * hid, seq_len);
    }
    b.gemm("output", 1, 2 * hid, targets, seq_len);
    b.aux("softmax", AuxKind::Softmax, targets, seq_len);
    return std::move(b).build();
}

std::vector<Network>
allBenchmarks()
{
    return {makeVgg16(),      makeResnet50(),  makeInceptionV3(),
            makeInceptionV4(), makeMobilenetV1(), makeSsd300(),
            makeYolov3(),     makeYolov3Tiny(), makeBert(),
            makeLstmPtb(),    makeBiLstmSwb()};
}

Network
benchmarkByName(const std::string &name)
{
    for (auto &net : allBenchmarks())
        if (net.name == name)
            return net;
    rapid_fatal("unknown benchmark '", name, "'");
}

void
applySparsityProfile(Network &net, double average_sparsity)
{
    // Pruning studies [55-58] consistently find early layers less
    // prunable than later ones; shape the profile as a ramp around
    // the requested average, clipped to [0.2, 0.92].
    std::vector<size_t> compute_idx;
    for (size_t i = 0; i < net.layers.size(); ++i)
        if (net.layers[i].isCompute())
            compute_idx.push_back(i);
    if (compute_idx.empty())
        return;
    const double span = 0.30; // first layer ~avg-0.15, last ~avg+0.15
    const size_t n = compute_idx.size();
    double sum_unclipped = 0.0;
    for (size_t j = 0; j < n; ++j) {
        double frac = n > 1 ? double(j) / double(n - 1) : 0.5;
        double s = average_sparsity + span * (frac - 0.5);
        s = std::clamp(s, 0.2, 0.92);
        net.layers[compute_idx[j]].weight_sparsity = s;
        sum_unclipped += s;
    }
    // Renormalize gently so the mean lands on the requested average.
    double correction = average_sparsity - sum_unclipped / double(n);
    for (size_t j = 0; j < n; ++j) {
        double &s = net.layers[compute_idx[j]].weight_sparsity;
        s = std::clamp(s + correction, 0.2, 0.92);
    }
}

std::vector<std::pair<Network, double>>
prunedBenchmarks()
{
    // Network-average sparsities follow the cited pruning results:
    // magnitude pruning of VGG-class models reaches ~80% [56], SSD
    // multi-layer pruning ~65% [57], ResNet/MobileNet gradual pruning
    // ~60%/50% [55], BERT encoder pruning ~60% [58].
    std::vector<std::pair<Network, double>> out;
    const std::pair<const char *, double> specs[] = {
        {"vgg16", 0.80},  {"resnet50", 0.60}, {"inception3", 0.55},
        {"mobilenetv1", 0.50}, {"ssd300", 0.65}, {"bert", 0.60},
    };
    for (const auto &[name, avg] : specs) {
        Network net = benchmarkByName(name);
        applySparsityProfile(net, avg);
        out.emplace_back(std::move(net), avg);
    }
    return out;
}

} // namespace rapid
