/**
 * @file
 * Fluent builder for network descriptions. Tracks the current feature
 * map geometry so layers compose like they do in a framework, and
 * automatically appends the auxiliary (BN / activation / pooling)
 * layers that accompany compute layers — those are exactly the ops
 * the SFU arrays execute (Section III-B).
 */

#ifndef RAPID_WORKLOADS_NET_BUILDER_HH
#define RAPID_WORKLOADS_NET_BUILDER_HH

#include <string>

#include "workloads/layer.hh"

namespace rapid {

/** Builds a Network layer by layer, tracking (C, H, W) geometry. */
class NetBuilder
{
  public:
    NetBuilder(std::string name, std::string domain, int64_t channels,
               int64_t height, int64_t width);

    /**
     * Convolution followed (optionally) by BatchNorm and ReLU aux
     * layers. Updates the tracked geometry.
     */
    NetBuilder &convRect(const std::string &name, int64_t co,
                         int64_t kh, int64_t kw, int64_t stride,
                         int64_t pad, int64_t groups = 1,
                         bool bn = true, bool act = true);

    /** Square-kernel convenience overload. */
    NetBuilder &conv(const std::string &name, int64_t co, int64_t k,
                     int64_t stride, int64_t pad, int64_t groups = 1,
                     bool bn = true, bool act = true);

    /** Depthwise conv (groups == channels) + BN + ReLU. */
    NetBuilder &dwConv(const std::string &name, int64_t k,
                       int64_t stride, int64_t pad);

    /** Max pooling aux layer; updates geometry. */
    NetBuilder &maxPool(int64_t k, int64_t stride, int64_t pad = 0);

    /** Average pooling aux layer; updates geometry. */
    NetBuilder &avgPool(int64_t k, int64_t stride, int64_t pad = 0);

    /** Global average pooling: collapses H x W to 1 x 1. */
    NetBuilder &globalPool();

    /** Fully connected layer from the flattened current geometry. */
    NetBuilder &fc(const std::string &name, int64_t out,
                   bool act = false);

    /** Raw GEMM (for attention / recurrent cells). */
    NetBuilder &gemm(const std::string &name, int64_t m, int64_t k,
                     int64_t n, int64_t repeat = 1);

    /** Raw auxiliary layer with an explicit element count. */
    NetBuilder &aux(const std::string &name, AuxKind kind,
                    int64_t elems, int64_t repeat = 1);

    /** Residual-style elementwise add over the current feature map. */
    NetBuilder &eltwiseAdd(const std::string &name);

    /** Nearest-neighbour upsample by @p factor; updates geometry. */
    NetBuilder &upsample(int64_t factor);

    /**
     * Manually set the tracked geometry (after concats or branch
     * joins the builder cannot infer).
     */
    NetBuilder &setGeometry(int64_t channels, int64_t height,
                            int64_t width);

    int64_t channels() const { return c_; }
    int64_t height() const { return h_; }
    int64_t width() const { return w_; }

    /** Finish and return the network. */
    Network build() &&;

    /** Access the network under construction (for branch helpers). */
    Network &net() { return net_; }

  private:
    Network net_;
    int64_t c_, h_, w_;
};

} // namespace rapid

#endif // RAPID_WORKLOADS_NET_BUILDER_HH
