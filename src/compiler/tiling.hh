/**
 * @file
 * Scratchpad tiling and double-buffer planning (Section III-E): the
 * compiler blocks the position loops (H x W x N) of each layer so
 * that a tile's working set fits the core's L1 with room to
 * double-buffer, then sizes the data fetches so DRAM latency hides
 * under compute ("data fetch latency can be effectively hidden by
 * double-buffering data in the L1 scratchpad overlapped in time with
 * computations in the core").
 */

#ifndef RAPID_COMPILER_TILING_HH
#define RAPID_COMPILER_TILING_HH

#include <algorithm>

#include "arch/config.hh"
#include "workloads/layer.hh"

namespace rapid {

/** A planned tile schedule for one layer on one core. */
struct TileSchedule
{
    /// Output positions (H x W x N elements of the position loop)
    /// processed per tile.
    int64_t positions_per_tile = 0;
    int64_t num_tiles = 0;

    double input_tile_bytes = 0;
    double output_tile_bytes = 0;
    double weight_bytes = 0; ///< stationary, fetched once

    /// True when two tiles' activations fit simultaneously, enabling
    /// fetch/compute overlap.
    bool double_buffered = false;

    /// DRAM cycles to fetch one tile's activations.
    double fetch_cycles_per_tile = 0;
    /// MPE cycles to compute one tile.
    double compute_cycles_per_tile = 0;

    /** Fraction of fetch latency hidden under compute (0..1). */
    double
    prefetchCoverage() const
    {
        if (fetch_cycles_per_tile <= 0)
            return 1.0;
        if (!double_buffered)
            return 0.0;
        return std::min(1.0, compute_cycles_per_tile /
                                 fetch_cycles_per_tile);
    }

    /** Total cycles including exposed fetch time. */
    double
    totalCycles() const
    {
        double exposed = double_buffered
            ? std::max(0.0, fetch_cycles_per_tile -
                                compute_cycles_per_tile)
            : fetch_cycles_per_tile;
        return num_tiles *
               (compute_cycles_per_tile + exposed);
    }
};

/**
 * Plans per-layer tile schedules against one core's L1 capacity and
 * the external memory bandwidth.
 */
class TilePlanner
{
  public:
    /**
     * @param core Core configuration (L1 capacity and port width).
     * @param mem_bytes_per_cycle External bandwidth seen by the core.
     */
    TilePlanner(const CoreConfig &core, double mem_bytes_per_cycle);

    /**
     * Plan @p layer at @p batch and @p precision. The returned
     * schedule always respects the L1 capacity, shrinking the tile
     * until it fits (down to one position).
     */
    TileSchedule plan(const Layer &layer, int64_t batch,
                      Precision precision) const;

    /** L1 bytes available for activation tiles (weights get the rest). */
    double activationBudget(const Layer &layer,
                            Precision precision) const;

  private:
    CoreConfig core_;
    double memBytesPerCycle_;
};

} // namespace rapid

#endif // RAPID_COMPILER_TILING_HH
