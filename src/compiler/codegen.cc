#include "compiler/codegen.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace rapid {

CodeGenerator::CodeGenerator(const ChipConfig &chip)
    : chip_(chip), mapper_(chip)
{
}

LayerProgram
CodeGenerator::generate(const Layer &layer, const LayerPlan &plan,
                        int64_t batch) const
{
    rapid_assert(layer.isCompute(), "codegen for non-compute layer ",
                 layer.name);
    const Precision p = plan.precision;
    rapid_assert(p != Precision::FP32, "FP32 layers run on the SFU");

    const MappedShape shape = mappedShape(layer, batch);
    Mapping m = mapper_.map(layer, batch, p);

    const int64_t red_cap = mapper_.reductionCap(p);
    const int64_t out_cap = mapper_.outputCap();
    const int64_t co_local =
        divCeil(shape.outputs, int64_t(m.workers_co));
    const int64_t pos_local =
        divCeil(shape.positions, int64_t(m.workers_pos));
    const int64_t n_co = divCeil(co_local, out_cap);
    const int64_t n_red = divCeil(shape.reduction, red_cap);

    LayerProgram prog;
    std::vector<MpeInstruction> raw;

    // Program prologue: fix the pipeline precision (and FP8 bias) for
    // the whole program, as the ISA requires (Section III-A.2).
    MpeInstruction set_prec;
    set_prec.op = Opcode::SetPrec;
    set_prec.prec = p;
    raw.push_back(set_prec);
    if (p == Precision::HFP8) {
        MpeInstruction set_bias;
        set_bias.op = Opcode::SetBias;
        set_bias.imm = 4;
        raw.push_back(set_bias);
    }

    const double tile_bytes =
        double(red_cap) * out_cap * operandBytes(p);
    unsigned token = 1;
    for (int64_t rep = 0; rep < layer.repeat; ++rep) {
        for (int64_t co = 0; co < n_co; ++co) {
            for (int64_t red = 0; red < n_red; ++red) {
                for (int64_t kk = 0; kk < shape.kernel; ++kk) {
                    // Stage the weight block through the MNI; the
                    // position-split workers share it via multicast.
                    PlannedTransfer tr;
                    tr.tag = token;
                    tr.bytes = uint64_t(tile_bytes * shape.kernel);
                    tr.n_consumers = unsigned(m.workers_pos);
                    tr.ready_token = token;
                    if (kk == 0)
                        prog.transfers.push_back(tr);

                    if (kk == 0) {
                        MpeInstruction wait;
                        wait.op = Opcode::TokWait;
                        wait.imm = uint16_t(token);
                        raw.push_back(wait);
                        raw.push_back(makeLrfLoad(0));
                        ++prog.num_tiles;
                    }
                    // Streaming FMMA over the positions; the encoded
                    // imm is a repeat count, chunked to 16 bits.
                    int64_t remaining = pos_local;
                    while (remaining > 0) {
                        int64_t chunk =
                            std::min<int64_t>(remaining, 0xffff);
                        MpeInstruction fmma = makeFmma(
                            p, OperandSel::West, OperandSel::Lrf, 1,
                            0);
                        fmma.imm = uint16_t(chunk);
                        raw.push_back(fmma);
                        prog.fmma_slots += uint64_t(chunk);
                        remaining -= chunk;
                    }
                    raw.push_back(makeMovSouth(1));
                }
                MpeInstruction post;
                post.op = Opcode::TokPost;
                post.imm = uint16_t(token);
                raw.push_back(post);
                ++token;
            }
        }
    }
    raw.push_back(makeHalt());

    // Round-trip through the binary encoding, like a real toolchain.
    prog.mpe_program.reserve(raw.size());
    for (const auto &inst : raw)
        prog.mpe_program.push_back(
            MpeInstruction::decode(inst.encode()));
    return prog;
}

} // namespace rapid
