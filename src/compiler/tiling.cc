#include "compiler/tiling.hh"

#include <algorithm>
#include <cmath>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace rapid {

namespace {

/** Position-loop extent of a compute layer at @p batch. */
int64_t
totalPositions(const Layer &layer, int64_t batch)
{
    if (layer.type == LayerType::Gemm)
        return layer.gm * batch * layer.repeat;
    return layer.outH() * layer.outW() * batch * layer.repeat;
}

/** Input bytes that must be resident to produce one output position. */
double
inputBytesPerPosition(const Layer &layer, Precision p)
{
    if (layer.type == LayerType::Gemm)
        return double(layer.gk) * operandBytes(p);
    // Convolution: consecutive output positions reuse the sliding
    // window; amortized, each position consumes ~Ci * stride^2 fresh
    // input elements (halo ignored -- a documented approximation).
    return double(layer.ci) * layer.stride * layer.stride *
           operandBytes(p);
}

/** Output bytes per position. */
double
outputBytesPerPosition(const Layer &layer, Precision p)
{
    const int64_t width =
        layer.type == LayerType::Gemm ? layer.gn : layer.co;
    return double(width) * operandBytes(p);
}

} // namespace

TilePlanner::TilePlanner(const CoreConfig &core,
                         double mem_bytes_per_cycle)
    : core_(core), memBytesPerCycle_(mem_bytes_per_cycle)
{
    rapid_assert(mem_bytes_per_cycle > 0, "non-positive memory rate");
}

double
TilePlanner::activationBudget(const Layer &layer,
                              Precision precision) const
{
    const double l1 = double(core_.l1_kib) * 1024.0;
    const double wt =
        double(layer.weightElems()) * operandBytes(precision);
    // Weights that fit stay pinned; activations get the remainder,
    // never less than a quarter of the L1.
    return std::max(0.25 * l1, l1 - std::min(wt, 0.75 * l1));
}

TileSchedule
TilePlanner::plan(const Layer &layer, int64_t batch,
                  Precision precision) const
{
    rapid_assert(layer.isCompute(), "tiling a non-compute layer ",
                 layer.name);
    TileSchedule s;
    const int64_t positions = totalPositions(layer, batch);
    const double in_pp = inputBytesPerPosition(layer, precision);
    const double out_pp = outputBytesPerPosition(layer, precision);
    s.weight_bytes =
        double(layer.weightElems()) * operandBytes(precision);

    const double budget = activationBudget(layer, precision);

    // Largest tile that double-buffers: 2 tiles' in+out must fit.
    int64_t per_tile = int64_t(budget / (2.0 * (in_pp + out_pp)));
    s.double_buffered = per_tile >= 1;
    if (per_tile < 1) {
        // Fall back to single-buffered, then to a single position.
        per_tile = std::max<int64_t>(
            1, int64_t(budget / (in_pp + out_pp)));
        s.double_buffered = false;
    }
    per_tile = std::min(per_tile, positions);
    rapid_dassert(per_tile >= 1 && positions >= 1,
                  "degenerate tile plan for layer ", layer.name, ": ",
                  per_tile, " positions per tile of ", positions);
    s.positions_per_tile = per_tile;
    s.num_tiles = divCeil(positions, per_tile);

    s.input_tile_bytes = double(per_tile) * in_pp;
    s.output_tile_bytes = double(per_tile) * out_pp;
    s.fetch_cycles_per_tile =
        (s.input_tile_bytes + s.output_tile_bytes) /
        memBytesPerCycle_;

    // MPE compute per position: reduction x kernel work at the
    // corelet rate (both corelets of the core cooperate).
    const double macs_per_pos =
        layer.type == LayerType::Gemm
            ? double(layer.gk) * layer.gn
            : double(layer.ci / layer.groups) * layer.kh * layer.kw *
                  layer.co;
    const double core_rate = core_.macsPerCycle(precision);
    s.compute_cycles_per_tile =
        double(per_tile) * macs_per_pos / core_rate;
    return s;
}

} // namespace rapid
