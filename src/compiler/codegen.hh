/**
 * @file
 * Program generation: lowers a mapped layer into the decoupled
 * programs the architecture actually executes (Section II-A) — a
 * data-processing program of MPE instructions for the tile walk, and
 * the list of tagged MNI transfers that the data-sequencing side
 * issues to stage each weight block, with token-based ordering
 * between them.
 */

#ifndef RAPID_COMPILER_CODEGEN_HH
#define RAPID_COMPILER_CODEGEN_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "arch/isa.hh"
#include "compiler/dataflow.hh"
#include "compiler/plan.hh"
#include "workloads/layer.hh"

namespace rapid {

/** One staged data transfer issued through the MNI. */
struct PlannedTransfer
{
    uint64_t tag = 0;
    uint64_t bytes = 0;
    /// Number of consumer corelets sharing this block (position-split
    /// workers receive the same weights via multicast).
    unsigned n_consumers = 1;
    /// Token the MPE program waits on before using the block.
    unsigned ready_token = 0;
};

/** The lowered form of one layer. */
struct LayerProgram
{
    std::vector<MpeInstruction> mpe_program;
    std::vector<PlannedTransfer> transfers;

    /// Streaming FMMA issue slots the program will occupy; must equal
    /// the mapper's per-worker compute cycles.
    uint64_t fmma_slots = 0;

    /// Tiles in the walk (= LrfLoad count = transfer count).
    uint64_t num_tiles = 0;
};

/** Lowers mapped compute layers to MPE + MNI programs. */
class CodeGenerator
{
  public:
    explicit CodeGenerator(const ChipConfig &chip);

    /**
     * Generate the per-worker program for @p layer under @p plan at
     * @p batch. The emitted instruction stream is round-tripped
     * through the binary encoding, like a real toolchain would.
     */
    LayerProgram generate(const Layer &layer, const LayerPlan &plan,
                          int64_t batch) const;

  private:
    ChipConfig chip_;
    DataflowMapper mapper_;
};

} // namespace rapid

#endif // RAPID_COMPILER_CODEGEN_HH
