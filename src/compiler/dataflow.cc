#include "compiler/dataflow.hh"

#include <limits>
#include <vector>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

namespace rapid {

MappedShape
mappedShape(const Layer &layer, int64_t batch)
{
    rapid_assert(layer.isCompute(), "mapping a non-compute layer ",
                 layer.name);
    MappedShape s;
    if (layer.type == LayerType::Gemm) {
        s.reduction = layer.gk;
        s.outputs = layer.gn;
        s.kernel = 1;
        s.positions = layer.gm * batch;
        s.weight_elems = layer.gk * layer.gn;
        return s;
    }
    const int64_t ci_per_group = layer.ci / layer.groups;
    if (ci_per_group == 1 && layer.groups == layer.ci) {
        // Depthwise convolution: there is no channel reduction, so the
        // compiler maps the kernel window along the rows (reduction)
        // and the channels along columns/SIMD. Utilization suffers at
        // low precision exactly as the paper observes for mobile nets.
        s.depthwise = true;
        s.reduction = layer.kh * layer.kw;
        s.outputs = layer.co;
        s.kernel = 1;
        s.positions = layer.outH() * layer.outW() * batch;
        s.weight_elems = layer.co * layer.kh * layer.kw;
        return s;
    }
    s.reduction = ci_per_group;
    s.outputs = layer.co;
    s.kernel = layer.kh * layer.kw;
    s.positions = layer.outH() * layer.outW() * batch;
    s.weight_elems = layer.weightElems();
    return s;
}

DataflowMapper::DataflowMapper(const ChipConfig &chip) : chip_(chip) {}

int64_t
DataflowMapper::reductionCap(Precision p) const
{
    const auto &mpe = chip_.core.corelet.mpe;
    // MACs per lane per cycle: 1 (FP16), 2 (HFP8 sub-SIMD),
    // 8 (INT4 doubled engines), 16 (INT2).
    const double packing = mpe.macsPerCycle(p) / mpe.fpu_simd_lanes;
    // Degraded mode: dead MPE rows shorten the accumulation chain, so
    // tiles shrink accordingly (activeMpeRows == mpe_rows healthy).
    return int64_t(chip_.activeMpeRows() * packing);
}

int64_t
DataflowMapper::outputCap() const
{
    return int64_t(chip_.core.corelet.mpe_cols) *
           chip_.core.corelet.mpe.fpu_simd_lanes;
}

int
DataflowMapper::workers() const
{
    // Degraded mode: masked-dead cores contribute no corelets, so the
    // mapper plans the split across the live cores only.
    return int(chip_.activeCores() * chip_.core.corelets);
}

Mapping
DataflowMapper::evaluateSplit(const MappedShape &shape, Precision p,
                              int workers_co, int workers_pos) const
{
    const int64_t red_cap = reductionCap(p);
    const int64_t out_cap = outputCap();

    const int64_t co_local = divCeil(shape.outputs,
                                     int64_t(workers_co));
    const int64_t pos_local = divCeil(shape.positions,
                                      int64_t(workers_pos));

    const int64_t n_co = divCeil(co_local, out_cap);
    const int64_t n_red = divCeil(shape.reduction, red_cap);

    Mapping m;
    m.workers_co = workers_co;
    m.workers_pos = workers_pos;
    m.compute_cycles =
        double(n_co) * n_red * shape.kernel * pos_local;

    // LRF block-loads: each (co, reduction) tile loads a padded
    // red_cap x out_cap x kernel weight block from L1 at the corelet's
    // L1 bandwidth. Position-split workers replicate the same loads.
    const double tile_bytes = double(red_cap) * out_cap * shape.kernel *
                              operandBytes(p);
    const double load_cycles_per_walk =
        double(n_co) * n_red * tile_bytes /
        chip_.core.l1_bw_bytes_per_cycle;
    m.block_load_cycles = load_cycles_per_walk;

    const double macs = double(shape.reduction) * shape.outputs *
                        shape.kernel * shape.positions;
    const double peak =
        m.totalCycles() * double(workers_co) * workers_pos * red_cap *
        out_cap;
    m.utilization = peak > 0 ? macs / peak : 0.0;
    return m;
}

Mapping
DataflowMapper::map(const Layer &layer, int64_t batch, Precision p)
    const
{
    const MappedShape shape = mappedShape(layer, batch);
    const int w = workers();

    // The compiler's design-space exploration: every divisor split of
    // the workers is an independent candidate, so they evaluate in
    // parallel and the argmin below scans the gathered results in the
    // same order a serial loop would, keeping the chosen mapping
    // bit-identical at any thread count.
    std::vector<int> splits;
    for (int w_co = 1; w_co <= w; ++w_co)
        if (w % w_co == 0)
            splits.push_back(w_co);
    const std::vector<Mapping> candidates =
        parallelMap(splits.size(), [&](size_t i) {
            return evaluateSplit(shape, p, splits[i], w / splits[i]);
        });

    Mapping best;
    double best_cycles = std::numeric_limits<double>::infinity();
    for (const Mapping &m : candidates) {
        const double cycles = m.totalCycles() * layer.repeat;
        if (cycles < best_cycles) {
            best_cycles = cycles;
            best = m;
        }
    }
    // Sequentially dependent repeats (LSTM timesteps, per-head GEMMs)
    // re-walk the weight tiles every instance.
    best.compute_cycles *= layer.repeat;
    best.block_load_cycles *= layer.repeat;
    return best;
}

} // namespace rapid
