/**
 * @file
 * Precision assignment pass of the graph compiler (Sections I and
 * V-A): most Conv/GEMM layers run at the target ultra-low precision,
 * but the first and last compute layers are kept at FP16 to preserve
 * accuracy, and all auxiliary operations execute on the SFU in
 * FP16/FP32.
 */

#ifndef RAPID_COMPILER_PRECISION_ASSIGN_HH
#define RAPID_COMPILER_PRECISION_ASSIGN_HH

#include "compiler/plan.hh"
#include "workloads/layer.hh"

namespace rapid {

/** Options controlling precision assignment. */
struct PrecisionOptions
{
    Precision target = Precision::INT4;
    /// Keep the first/last compute layers at FP16 (the accuracy-
    /// preserving rule); always true in the paper's evaluations.
    bool protect_edge_layers = true;
};

/**
 * Build an execution plan assigning @p opts.target to eligible
 * compute layers and FP16 elsewhere.
 */
ExecutionPlan assignPrecision(const Network &net,
                              const PrecisionOptions &opts);

/** Convenience: uniform-precision plan (used for FP16 baselines). */
ExecutionPlan uniformPlan(const Network &net, Precision p);

/** Fraction of the network's MACs the plan runs at @p p. */
double macFractionAt(const Network &net, const ExecutionPlan &plan,
                     Precision p);

} // namespace rapid

#endif // RAPID_COMPILER_PRECISION_ASSIGN_HH
