#include "compiler/precision_assign.hh"

namespace rapid {

ExecutionPlan
assignPrecision(const Network &net, const PrecisionOptions &opts)
{
    ExecutionPlan plan;
    plan.layers.resize(net.layers.size());

    // Locate the first and last compute layers.
    size_t first = net.layers.size(), last = 0;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        if (net.layers[i].isCompute()) {
            if (first == net.layers.size())
                first = i;
            last = i;
        }
    }

    for (size_t i = 0; i < net.layers.size(); ++i) {
        LayerPlan &lp = plan.layers[i];
        if (!net.layers[i].isCompute()) {
            lp.precision = Precision::FP16;
            continue;
        }
        const bool prot = (i == first || i == last ||
                           net.layers[i].accuracy_sensitive);
        lp.precision = (prot && opts.protect_edge_layers &&
                        opts.target != Precision::FP16)
                           ? Precision::FP16
                           : opts.target;
    }
    return plan;
}

ExecutionPlan
uniformPlan(const Network &net, Precision p)
{
    ExecutionPlan plan;
    plan.layers.resize(net.layers.size());
    for (size_t i = 0; i < net.layers.size(); ++i)
        plan.layers[i].precision =
            net.layers[i].isCompute() ? p : Precision::FP16;
    return plan;
}

double
macFractionAt(const Network &net, const ExecutionPlan &plan,
              Precision p)
{
    double at = 0, total = 0;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        double macs = double(net.layers[i].macsPerSample());
        total += macs;
        if (plan.at(i).precision == p)
            at += macs;
    }
    return total > 0 ? at / total : 0.0;
}

} // namespace rapid
