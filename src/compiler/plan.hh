/**
 * @file
 * The execution plan the graph compiler hands to the performance
 * model: a per-layer precision assignment plus the sparsity-aware
 * frequency-throttle level (Sections III-C and IV-B).
 */

#ifndef RAPID_COMPILER_PLAN_HH
#define RAPID_COMPILER_PLAN_HH

#include <vector>

#include "precision/precision.hh"
#include "workloads/layer.hh"

namespace rapid {

/** Compiler decisions for one layer. */
struct LayerPlan
{
    Precision precision = Precision::FP16;
    /// Effective-frequency multiplier from sparsity-aware throttling
    /// relative to the dense envelope-limited frequency (>= 1 means
    /// the layer runs faster than the dense baseline would allow).
    double throttle = 1.0;
};

/** Whole-network execution plan, aligned with Network::layers. */
struct ExecutionPlan
{
    std::vector<LayerPlan> layers;

    const LayerPlan &
    at(size_t i) const
    {
        rapid_assert(i < layers.size(), "plan index ", i, " out of ",
                     layers.size());
        return layers[i];
    }
};

} // namespace rapid

#endif // RAPID_COMPILER_PLAN_HH
