/**
 * @file
 * The weight-stationary dataflow mapper (Figure 5, Section III-A.4)
 * and per-layer cycle model.
 *
 * Mapping rules derived in the paper:
 *  - Input channels (Ci) map spatially along MPE rows and the LRF;
 *    output channels (Co) along columns and SIMD lanes.
 *  - Inputs stream along rows, outputs along columns; weights are
 *    block-loaded into the LRF and reused over H x W x N positions.
 *  - Loop nest (outer to inner): Co tiles, Ci tiles, Ki x Kj,
 *    N, H x W.
 *
 * The cycle model counts (a) streaming compute cycles with exact
 * ceil() residue effects, (b) LRF block-load stalls, whose relative
 * cost grows at small batch (Section III-A.4: "frequent block-loads
 * for small batch sizes"), and (c) the spatial work split across
 * cores/corelets chosen by the compiler's design-space exploration.
 */

#ifndef RAPID_COMPILER_DATAFLOW_HH
#define RAPID_COMPILER_DATAFLOW_HH

#include <cstdint>
#include <string>

#include "arch/config.hh"
#include "workloads/layer.hh"

namespace rapid {

/** A Conv/GEMM layer reduced to mapper-relevant dimensions. */
struct MappedShape
{
    int64_t reduction;     ///< Ci (per group), or K for GEMMs
    int64_t outputs;       ///< Co, or N columns for GEMMs
    int64_t kernel;        ///< Kh * Kw (1 for GEMMs)
    int64_t positions;     ///< Ho * Wo * batch, or M * batch
    int64_t weight_elems;  ///< parameters to block-load
    bool depthwise = false;
};

/** Extract the mapped shape of a compute layer at @p batch. */
MappedShape mappedShape(const Layer &layer, int64_t batch);

/** Result of mapping one layer onto the chip. */
struct Mapping
{
    /// Workers assigned to output-channel splitting vs position
    /// (spatial/batch) splitting; their product is the worker count.
    int workers_co = 1;
    int workers_pos = 1;

    double compute_cycles = 0;    ///< streaming FMMA cycles
    double block_load_cycles = 0; ///< LRF weight-load stalls
    double utilization = 0;       ///< MACs / (cycles * peak rate)

    double totalCycles() const
    {
        return compute_cycles + block_load_cycles;
    }
};

/**
 * Maps compute layers onto a chip at a given precision, choosing the
 * best split of workers between Co and positions (the compiler's
 * design-space exploration of Section IV-B).
 */
class DataflowMapper
{
  public:
    explicit DataflowMapper(const ChipConfig &chip);

    /**
     * Spatial reduction capacity of one corelet at @p p:
     * rows x (MACs the sub-SIMD/FXU packing performs per lane).
     */
    int64_t reductionCap(Precision p) const;

    /** Spatial output capacity of one corelet: cols x SIMD lanes. */
    int64_t outputCap() const;

    /** Total corelet workers on the chip. */
    int workers() const;

    /**
     * Map @p layer at @p batch and @p precision; returns the best
     * mapping over all worker splits.
     */
    Mapping map(const Layer &layer, int64_t batch, Precision p) const;

    /** Cycle cost of one specific split (exposed for tests). */
    Mapping evaluateSplit(const MappedShape &shape, Precision p,
                          int workers_co, int workers_pos) const;

  private:
    ChipConfig chip_;
};

} // namespace rapid

#endif // RAPID_COMPILER_DATAFLOW_HH
