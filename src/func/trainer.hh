/**
 * @file
 * A small from-scratch MLP training framework with pluggable GEMM
 * precision, used to reproduce the paper's algorithmic foundations:
 *
 *   - HFP8 training (Section II-B): forward GEMMs run with both
 *     operands in FP8 (1,4,3); the backward data-gradient and weight-
 *     gradient GEMMs mix FP8 (1,5,2) error operands with FP8 (1,4,3)
 *     weight/activation operands, exactly as Figure 3 prescribes.
 *     Accumulation is chunked DLFloat16; master weights stay FP32.
 *   - PACT (Section II-C): the activation is a clipped ReLU whose clip
 *     alpha is learned jointly with the weights via the straight-
 *     through estimator.
 *   - INT4/INT2 deployment: a trained model is quantized with SaWB
 *     weights + PACT activations and evaluated through the FXU
 *     executors.
 */

#ifndef RAPID_FUNC_TRAINER_HH
#define RAPID_FUNC_TRAINER_HH

#include <string>
#include <vector>

#include "common/fault.hh"
#include "func/datasets.hh"
#include "func/quantized_ops.hh"
#include "tensor/tensor.hh"

namespace rapid {

/** GEMM execution precision during training. */
enum class TrainPrecision
{
    FP32, ///< golden baseline
    FP16, ///< DLFloat16 GEMMs with chunked accumulation
    HFP8, ///< hybrid FP8 GEMMs per Figure 3
};

/** Hyper-parameters of the MLP and its training run. */
struct MlpConfig
{
    std::vector<int64_t> dims;   ///< e.g. {2, 48, 48, 2}
    TrainPrecision precision = TrainPrecision::FP32;
    ExecConfig exec;             ///< chunking / FP8 bias knobs
    bool use_pact = true;        ///< PACT-ReLU (learned clip) vs ReLU
    float pact_alpha_init = 6.0f;
    unsigned pact_bits = 4;      ///< quantized level count when deployed
    float learning_rate = 0.1f;
    float momentum = 0.9f;
    float alpha_lr_scale = 0.01f; ///< PACT alpha learns more slowly
    /// L2 decay on alpha: PACT regularizes the clip value so it
    /// shrinks toward the live activation range instead of idling
    /// above it (keeps the quantization grid dense).
    float alpha_decay = 0.05f;
    uint64_t seed = 1234;
};

/**
 * Throw rapid::Error if @p cfg is malformed: fewer than two dims or a
 * non-positive dim, a non-positive learning rate or PACT alpha init,
 * momentum outside [0, 1), or fewer than 2 PACT bits.
 */
void validateMlpConfig(const MlpConfig &cfg);

/** Human-readable training precision ("fp32" / "fp16" / "hfp8"). */
const char *trainPrecisionName(TrainPrecision precision);

/**
 * Numeric health of one gradient computation — the per-step sensor
 * the resilient training runtime reads before deciding whether the
 * pending update is safe to apply.
 */
struct GradHealth
{
    float loss = 0.0f;        ///< batch loss at the attempted step
    bool loss_finite = true;  ///< std::isfinite(loss)
    bool grads_finite = true; ///< every weight/bias/alpha grad finite
    float grad_max_abs = 0.0f; ///< largest |gradient| observed (finite)

    bool healthy() const { return loss_finite && grads_finite; }
};

/**
 * Bit-exact snapshot of one dense layer's trainable state (master
 * weights, momentum buffers, PACT clip) — the unit the checkpoint
 * engine serializes.
 */
struct DenseState
{
    std::vector<float> w, b, w_vel, b_vel;
    float alpha = 0.0f;
    float alpha_vel = 0.0f;
};

/**
 * Bit-exact snapshot of the whole model: every layer plus the
 * execution precision (which the recovery ladder may have escalated)
 * and the serialized RNG stream position, so a restored model resumes
 * the exact trajectory it would have taken uninterrupted.
 */
struct MlpState
{
    std::vector<DenseState> layers;
    TrainPrecision precision = TrainPrecision::FP32;
    std::string rng; ///< mt19937_64 stream state (textual, stable)

    bool operator==(const MlpState &o) const;
    bool operator!=(const MlpState &o) const { return !(*this == o); }
};

/**
 * Fully connected classifier with PACT-ReLU hidden activations and a
 * softmax cross-entropy head.
 */
class Mlp
{
  public:
    explicit Mlp(const MlpConfig &cfg);

    /** Forward pass at the configured training precision. */
    Tensor forward(const Tensor &x);

    /** One SGD step on a minibatch; returns the batch loss. */
    float trainStep(const Tensor &x, const std::vector<int> &labels);

    /**
     * Forward + backward only: compute and cache the gradients of a
     * minibatch without touching the weights. The loss gradient is
     * multiplied by @p loss_scale before backpropagation (dynamic
     * loss scaling lifts HFP8's small backward-format errors out of
     * the FP8 underflow region); gradients stay *scaled* until
     * applyStep() divides them back out. @p loss_scale 1 reproduces
     * the historical trainStep math bit-for-bit.
     */
    GradHealth computeGradients(const Tensor &x,
                                const std::vector<int> &labels,
                                float loss_scale = 1.0f);

    /**
     * Apply the pending (scaled) gradients as one SGD-with-momentum
     * update, unscaling by @p inv_scale (= 1 / loss_scale). Call at
     * most once per computeGradients().
     */
    void applyStep(float inv_scale = 1.0f);

    /** Run @p epochs of minibatch SGD over @p train. */
    void train(const Dataset &train, int epochs, int64_t batch_size);

    /** Classification accuracy at the configured precision. */
    double evaluate(const Dataset &test);

    /**
     * Deploy-time INT quantized inference: SaWB-quantized weights and
     * PACT-quantized activations through the FXU executor at
     * @p width bits. First and last layers stay FP16, mirroring the
     * precision-assignment rule the compiler applies on RaPiD.
     */
    double evaluateInt(const Dataset &test, unsigned width,
                       bool keep_edges_fp16 = true);

    /** Learned PACT clip value of hidden layer @p i. */
    float pactAlpha(size_t i) const;

    size_t numLayers() const { return layers_.size(); }

    /** The GEMM precision currently executing. */
    TrainPrecision precision() const { return cfg_.precision; }

    /**
     * Switch the GEMM execution precision mid-run — the recovery
     * ladder's HFP8 -> FP16 escalation. Master weights, momentum and
     * PACT state carry over untouched.
     */
    void setPrecision(TrainPrecision precision);

    /** Every master weight, bias, and PACT alpha is finite. */
    bool weightsFinite() const;

    /**
     * Bit-exact snapshot / restore of all trainable state, the model
     * half of the deterministic checkpoint format. importState
     * validates layer shapes against this model's configuration.
     */
    MlpState exportState() const;
    void importState(const MlpState &state);

    /**
     * Attach a fault injector: every GEMM output element becomes a
     * FaultSite::TrainerGemm exposure keyed by a monotonically
     * increasing element counter (mixSeed discipline — deterministic
     * across runs and thread counts, and *not* rewound by rollback,
     * so a retried step sees fresh, independent fault draws the way a
     * re-executed step on real silicon would). Pass nullptr to
     * detach. The injector must outlive the model.
     */
    void setFaultInjector(const FaultInjector *injector);

    /** Cumulative TrainerGemm fault outcomes since clearFaultStats. */
    const FaultStats &faultStats() const { return fault_stats_; }
    void clearFaultStats() { fault_stats_ = FaultStats{}; }

  private:
    struct Dense
    {
        Tensor w;       ///< (out, in) FP32 master weights
        Tensor b;       ///< (out)
        Tensor w_vel;   ///< momentum buffers
        Tensor b_vel;
        Tensor x_cache; ///< forward input, reduced-precision view
        Tensor w_grad;
        Tensor b_grad;
        float alpha;        ///< PACT clip (hidden layers only)
        float alpha_vel = 0.0f;
        float alpha_grad = 0.0f;
        Tensor pre_act;     ///< pre-activation cache
    };

    Tensor denseForward(Dense &d, const Tensor &x);
    Tensor denseBackward(Dense &d, const Tensor &dy);
    Tensor gemm(const Tensor &a, Fp8Kind a_kind, const Tensor &b,
                Fp8Kind b_kind);
    void injectGemmFaults(Tensor &out);
    void applyUpdates(Dense &d, float inv_scale);

    MlpConfig cfg_;
    std::vector<Dense> layers_;
    Rng rng_;
    const FaultInjector *injector_ = nullptr;
    FaultStats fault_stats_;
    /// Per-element fault-exposure counter (time-like: never rewound).
    uint64_t fault_item_ = 0;
};

/** Result of a precision-parity experiment. */
struct ParityResult
{
    double baseline_accuracy;  ///< FP32 training / FP32 inference
    double reduced_accuracy;   ///< reduced-precision counterpart
    double gap() const { return baseline_accuracy - reduced_accuracy; }
};

/**
 * Train two identically seeded MLPs, one at FP32 and one at
 * @p precision, and compare test accuracy (the Section II-B claim).
 */
ParityResult runTrainingParity(TrainPrecision precision,
                               const Dataset &train, const Dataset &test,
                               int epochs = 30, int64_t batch = 32);

/**
 * Train at FP32 with PACT, then evaluate FP32 vs INT-@p width
 * PACT/SaWB inference (the Section II-C claim).
 */
ParityResult runInferenceParity(unsigned width, const Dataset &train,
                                const Dataset &test, int epochs = 30,
                                int64_t batch = 32);

} // namespace rapid

#endif // RAPID_FUNC_TRAINER_HH
