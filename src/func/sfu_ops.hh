/**
 * @file
 * SFU function library (Section III-B): the Special Function Units
 * provide both *accurate* and *fast* versions of the non-linear
 * functions — sqrt, exp, ln, tanh, sigmoid, and reciprocal are
 * "realized using approximations". The fast versions here use the
 * range-reduction + low-degree-polynomial schemes a hardware SFU
 * implements, evaluated in FP32 and emitted as DLFloat16, and carry
 * accuracy guarantees proven by the test suite.
 */

#ifndef RAPID_FUNC_SFU_OPS_HH
#define RAPID_FUNC_SFU_OPS_HH

#include "tensor/tensor.hh"

namespace rapid {

/** Accuracy tier of an SFU evaluation (Section III-B). */
enum class SfuMode
{
    Accurate, ///< library-accurate FP32 evaluation
    Fast,     ///< hardware polynomial approximation
};

/** Scalar fast approximations (exposed for testing/accuracy audits). */
namespace sfu {

/** Fast exp: 2^x decomposition with a degree-3 fraction polynomial. */
float fastExp(float x);

/** Fast natural log via exponent extraction + mantissa polynomial. */
float fastLog(float x);

/** Fast reciprocal: Newton-Raphson on a bit-trick seed (2 steps). */
float fastReciprocal(float x);

/** Fast inverse square root (2 Newton steps); sqrt = x * rsqrt(x). */
float fastRsqrt(float x);
float fastSqrt(float x);

/** Fast sigmoid built on fastExp with symmetric range reduction. */
float fastSigmoid(float x);

/** Fast tanh via the sigmoid identity. */
float fastTanh(float x);

/** Fast GELU (tanh form), the BERT activation. */
float fastGelu(float x);

} // namespace sfu

/**
 * Elementwise SFU evaluation of a tensor. Results are rounded to
 * DLFloat16 like everything leaving the SFU datapath.
 */
Tensor sfuSigmoid(const Tensor &x, SfuMode mode = SfuMode::Fast);
Tensor sfuTanh(const Tensor &x, SfuMode mode = SfuMode::Fast);
Tensor sfuExp(const Tensor &x, SfuMode mode = SfuMode::Fast);
Tensor sfuGelu(const Tensor &x, SfuMode mode = SfuMode::Fast);
Tensor sfuReciprocal(const Tensor &x, SfuMode mode = SfuMode::Fast);
Tensor sfuSqrt(const Tensor &x, SfuMode mode = SfuMode::Fast);

/**
 * SFU softmax over the rows of a rank-2 tensor: max-subtract, fast
 * exp, reduction, fast reciprocal — the sequence the Figure 17
 * auxiliary category pays for.
 */
Tensor sfuSoftmax(const Tensor &x, SfuMode mode = SfuMode::Fast);

/** Data-shuffle ops the SFU arrays execute in training updates. */
Tensor sfuTranspose(const Tensor &x);

/** Max absolute error of @p mode vs accurate over @p samples. */
double sfuMaxError(float (*fast_fn)(float), double (*ref_fn)(double),
                   const std::vector<float> &samples);

} // namespace rapid

#endif // RAPID_FUNC_SFU_OPS_HH
