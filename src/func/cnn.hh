/**
 * @file
 * A small convolutional network trainer with pluggable precision,
 * extending the HFP8-parity demonstration (Section II-B) from MLPs to
 * the convolution workloads RaPiD actually targets. Convolution
 * operands (activations/weights forward, errors backward) are
 * quantized to the pass's FP8 flavour element-by-element before the
 * reference convolution, modelling the exact operand formats of
 * Figure 3; accumulation is modelled at the SFU's FP32 level
 * (a documented simplification relative to the MLP path's chunked
 * FP16 emulation).
 */

#ifndef RAPID_FUNC_CNN_HH
#define RAPID_FUNC_CNN_HH

#include <vector>

#include "func/trainer.hh"
#include "tensor/ops.hh"

namespace rapid {

/** A labelled image dataset: (N, C, H, W) plus integer labels. */
struct ImageDataset
{
    Tensor images{std::vector<int64_t>{1, 1, 1, 1}};
    std::vector<int> labels;

    int64_t size() const { return images.dim(0); }

    /** Slice samples [begin, begin+count). */
    ImageDataset slice(int64_t begin, int64_t count) const;
};

/**
 * Synthetic 1x8x8 orientation task: class 0 = horizontal stripes,
 * class 1 = vertical stripes, with random phase/amplitude and noise.
 */
ImageDataset makeStripes(Rng &rng, int64_t samples_per_class,
                         double noise = 0.25);

/** CNN hyper-parameters. */
struct CnnConfig
{
    int64_t classes = 2;
    int64_t conv1_channels = 8;
    int64_t conv2_channels = 16;
    TrainPrecision precision = TrainPrecision::FP32;
    int fwd_bias = 4; ///< programmable FP8 (1,4,3) exponent bias
    float learning_rate = 0.05f;
    float momentum = 0.9f;
    uint64_t seed = 4321;
};

/**
 * conv(3x3) -> ReLU -> maxpool(2) -> conv(3x3) -> ReLU -> global
 * average pool -> fc, trained with momentum SGD.
 */
class SmallCnn
{
  public:
    explicit SmallCnn(const CnnConfig &cfg);

    /** Forward at the configured precision; returns logits (N, C). */
    Tensor forward(const Tensor &images);

    /** One SGD step; returns the batch loss. */
    float trainStep(const Tensor &images,
                    const std::vector<int> &labels);

    void train(const ImageDataset &train, int epochs,
               int64_t batch_size);

    double evaluate(const ImageDataset &test);

  private:
    /** Quantize a tensor to the precision's operand format. */
    Tensor asOperand(const Tensor &t, Fp8Kind kind) const;

    CnnConfig cfg_;
    Rng rng_;

    Tensor w1_, b1_, w2_, b2_, w3_, b3_;
    Tensor v_w1_, v_b1_, v_w2_, v_b2_, v_w3_, v_b3_;

    // Forward caches for backprop.
    Tensor x_in_, a1_, p1_, a2_, g2_;
    std::vector<int64_t> pool_argmax_;
};

/**
 * Train identical CNNs at FP32 and @p precision on the stripes task
 * and compare test accuracies (CNN counterpart of
 * runTrainingParity()).
 */
ParityResult runCnnTrainingParity(TrainPrecision precision,
                                  const ImageDataset &train,
                                  const ImageDataset &test,
                                  int epochs = 12, int64_t batch = 16);

} // namespace rapid

#endif // RAPID_FUNC_CNN_HH
