/**
 * @file
 * Synthetic classification datasets. The paper's accuracy claims are
 * established on ImageNet/COCO-scale models; reproducing those
 * trainings is infeasible here, so the HFP8-vs-FP32 and INT4-vs-FP32
 * parity experiments run on laptop-scale synthetic tasks that are
 * still non-linearly separable (see DESIGN.md substitutions).
 */

#ifndef RAPID_FUNC_DATASETS_HH
#define RAPID_FUNC_DATASETS_HH

#include <vector>

#include "common/random.hh"
#include "tensor/tensor.hh"

namespace rapid {

/** A labelled dataset: features (N, D) and integer class labels. */
struct Dataset
{
    Tensor features{std::vector<int64_t>{1, 1}};
    std::vector<int> labels;

    int64_t size() const { return features.dim(0); }
    int64_t featureDim() const { return features.dim(1); }

    /** Slice rows [begin, begin+count). */
    Dataset slice(int64_t begin, int64_t count) const;
};

/**
 * Two interleaved 2-D spirals, the classic non-linearly-separable
 * benchmark task. @p noise adds Gaussian jitter.
 */
Dataset makeSpirals(Rng &rng, int64_t samples_per_class,
                    double noise = 0.08);

/**
 * @p classes Gaussian blobs in @p dim dimensions with unit separation
 * and @p spread standard deviation.
 *
 * @note The class centers are drawn from @p rng too, so two calls
 *       produce blobs around *different* centers. To get a matching
 *       train/test pair, generate one dataset and slice() it.
 */
Dataset makeBlobs(Rng &rng, int64_t classes, int64_t dim,
                  int64_t samples_per_class, double spread = 0.35);

/** Shuffle rows in place (features and labels together). */
void shuffleDataset(Rng &rng, Dataset &ds);

/** Fraction of rows of @p logits whose argmax matches the label. */
double accuracy(const Tensor &logits, const std::vector<int> &labels);

} // namespace rapid

#endif // RAPID_FUNC_DATASETS_HH
