#include "func/trainer.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/error.hh"

namespace rapid {

void
validateMlpConfig(const MlpConfig &cfg)
{
    RAPID_CHECK_ARG(cfg.dims.size() >= 2,
                    "MlpConfig.dims needs at least 2 entries (input and "
                    "output width), got ", cfg.dims.size());
    for (size_t i = 0; i < cfg.dims.size(); ++i)
        RAPID_CHECK_ARG(cfg.dims[i] > 0, "MlpConfig.dims[", i,
                        "] must be positive, got ", cfg.dims[i]);
    RAPID_CHECK_ARG(std::isfinite(cfg.learning_rate) &&
                        cfg.learning_rate > 0.0f,
                    "MlpConfig.learning_rate must be finite and "
                    "positive, got ", cfg.learning_rate);
    RAPID_CHECK_ARG(std::isfinite(cfg.momentum) && cfg.momentum >= 0.0f &&
                        cfg.momentum < 1.0f,
                    "MlpConfig.momentum must be in [0, 1), got ",
                    cfg.momentum);
    RAPID_CHECK_ARG(std::isfinite(cfg.pact_alpha_init) &&
                        cfg.pact_alpha_init > 0.0f,
                    "MlpConfig.pact_alpha_init must be finite and "
                    "positive, got ", cfg.pact_alpha_init);
    RAPID_CHECK_ARG(cfg.pact_bits >= 2,
                    "MlpConfig.pact_bits must be at least 2, got ",
                    cfg.pact_bits);
    RAPID_CHECK_ARG(std::isfinite(cfg.alpha_lr_scale) &&
                        cfg.alpha_lr_scale >= 0.0f,
                    "MlpConfig.alpha_lr_scale must be finite and "
                    ">= 0, got ", cfg.alpha_lr_scale);
    RAPID_CHECK_ARG(std::isfinite(cfg.alpha_decay) &&
                        cfg.alpha_decay >= 0.0f,
                    "MlpConfig.alpha_decay must be finite and >= 0, "
                    "got ", cfg.alpha_decay);
}

const char *
trainPrecisionName(TrainPrecision precision)
{
    switch (precision) {
      case TrainPrecision::FP32:
        return "fp32";
      case TrainPrecision::FP16:
        return "fp16";
      case TrainPrecision::HFP8:
        return "hfp8";
    }
    return "?";
}

namespace {

bool
allFinite(const std::vector<float> &v)
{
    for (float x : v)
        if (!std::isfinite(x))
            return false;
    return true;
}

} // namespace

bool
MlpState::operator==(const MlpState &o) const
{
    auto bitsEqual = [](const std::vector<float> &a,
                        const std::vector<float> &b) {
        if (a.size() != b.size())
            return false;
        // memcmp semantics: compare encodings, not float values, so
        // NaNs and signed zeros count as differences.
        return a.empty() ||
               std::memcmp(a.data(), b.data(),
                           a.size() * sizeof(float)) == 0;
    };
    if (precision != o.precision || rng != o.rng ||
        layers.size() != o.layers.size())
        return false;
    for (size_t i = 0; i < layers.size(); ++i) {
        const DenseState &a = layers[i];
        const DenseState &b = o.layers[i];
        float av[2] = {a.alpha, a.alpha_vel};
        float bv[2] = {b.alpha, b.alpha_vel};
        if (!bitsEqual(a.w, b.w) || !bitsEqual(a.b, b.b) ||
            !bitsEqual(a.w_vel, b.w_vel) || !bitsEqual(a.b_vel, b.b_vel) ||
            std::memcmp(av, bv, sizeof(av)) != 0)
            return false;
    }
    return true;
}

Mlp::Mlp(const MlpConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
    validateMlpConfig(cfg);
    for (size_t i = 0; i + 1 < cfg.dims.size(); ++i) {
        Dense d;
        int64_t in = cfg.dims[i];
        int64_t out = cfg.dims[i + 1];
        d.w = Tensor({out, in});
        d.w.fillKaiming(rng_, in);
        d.b = Tensor({out});
        d.w_vel = Tensor({out, in});
        d.b_vel = Tensor({out});
        d.alpha = cfg.pact_alpha_init;
        layers_.push_back(std::move(d));
    }
}

Tensor
Mlp::gemm(const Tensor &a, Fp8Kind a_kind, const Tensor &b,
          Fp8Kind b_kind)
{
    Tensor out;
    switch (cfg_.precision) {
      case TrainPrecision::FP32:
        out = matmul(a, b);
        break;
      case TrainPrecision::FP16:
        out = fp16Matmul(a, b, cfg_.exec);
        break;
      case TrainPrecision::HFP8:
        out = hfp8Matmul(a, a_kind, b, b_kind, cfg_.exec);
        break;
      default:
        rapid_panic("unknown training precision");
    }
    if (injector_ && injector_->active(FaultSite::TrainerGemm))
        injectGemmFaults(out);
    return out;
}

void
Mlp::injectGemmFaults(Tensor &out)
{
    // Mirror of the systolic MacOutput model at the training GEMM
    // boundary: a struck output element has one bit of its DLFloat16
    // (south-bus) encoding flipped. Items advance monotonically so
    // each executed GEMM — including a replay of the same step after
    // retry or rollback — is an independent exposure window. The
    // Bernoulli is the hash pre-filter: the full mt19937 stream is
    // only built for struck elements, keeping the per-element cost at
    // a hash rather than an RNG construction.
    const int64_t n = out.numel();
    const uint64_t base = fault_item_;
    fault_item_ += uint64_t(n);
    fault_stats_.sampled += uint64_t(n);
    for (int64_t i = 0; i < n; ++i) {
        const uint64_t item = base + uint64_t(i);
        if (!injector_->hashEventDraw(FaultSite::TrainerGemm, item))
            continue;
        ++fault_stats_.injected;
        Rng rng = injector_->stream(FaultSite::TrainerGemm, item);
        const FaultOutcome hit = injector_->resolveProtection(
            FaultSite::TrainerGemm, rng, fault_stats_);
        if (hit != FaultOutcome::Silent)
            continue; // corrected in place, or the GEMM tile replays
        const uint32_t word = dlfloat16().encode(out[i]);
        const float clean = dlfloat16().decode(word);
        const float bad = dlfloat16().decode(injector_->flipOneBit(
            rng, dlfloat16().storageBits(), word));
        if (bad == clean) {
            ++fault_stats_.masked; // e.g. a sign flip on zero
            continue;
        }
        ++fault_stats_.sdc;
        out[i] = bad;
    }
}

Tensor
Mlp::denseForward(Dense &d, const Tensor &x)
{
    d.x_cache = x;
    // Forward GEMM: both operands in the FP8 forward format (Fig 3).
    Tensor y = gemm(x, Fp8Kind::Forward, transpose(d.w),
                    Fp8Kind::Forward);
    return biasAdd(y, d.b);
}

Tensor
Mlp::forward(const Tensor &x)
{
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        Dense &d = layers_[i];
        Tensor y = denseForward(d, h);
        d.pre_act = y;
        if (i + 1 < layers_.size()) {
            if (cfg_.use_pact) {
                const float alpha = d.alpha;
                y.apply([alpha](float v) {
                    return std::clamp(v, 0.0f, alpha);
                });
            } else {
                y.apply([](float v) { return v > 0 ? v : 0.0f; });
            }
        }
        h = std::move(y);
    }
    return h;
}

Tensor
Mlp::denseBackward(Dense &d, const Tensor &dy)
{
    // Weight-gradient GEMM: errors in the FP8 backward format, cached
    // activations in the forward format (Fig 3).
    d.w_grad = gemm(transpose(dy), Fp8Kind::Backward, d.x_cache,
                    Fp8Kind::Forward);
    // Bias gradient: column reduction, performed on the SFU in FP32.
    d.b_grad = Tensor({dy.dim(1)});
    for (int64_t j = 0; j < dy.dim(1); ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < dy.dim(0); ++i)
            acc += dy.at(i, j);
        d.b_grad[j] = float(acc);
    }
    // Data-gradient GEMM: errors (backward format) x weights (forward).
    return gemm(dy, Fp8Kind::Backward, d.w, Fp8Kind::Forward);
}

void
Mlp::applyUpdates(Dense &d, float inv_scale)
{
    const float lr = cfg_.learning_rate;
    const float mom = cfg_.momentum;
    // inv_scale un-scales the loss-scaled gradients. Multiplication
    // by 1.0f is exact under IEEE 754, so an unscaled step (the
    // historical trainStep path) stays bit-identical.
    for (int64_t i = 0; i < d.w.numel(); ++i) {
        d.w_vel[i] = mom * d.w_vel[i] - lr * (d.w_grad[i] * inv_scale);
        d.w[i] += d.w_vel[i];
    }
    for (int64_t i = 0; i < d.b.numel(); ++i) {
        d.b_vel[i] = mom * d.b_vel[i] - lr * (d.b_grad[i] * inv_scale);
        d.b[i] += d.b_vel[i];
    }
    if (cfg_.use_pact) {
        d.alpha_vel = mom * d.alpha_vel
                      - lr * cfg_.alpha_lr_scale *
                            (d.alpha_grad * inv_scale);
        d.alpha = std::max(0.1f, d.alpha + d.alpha_vel);
    }
}

GradHealth
Mlp::computeGradients(const Tensor &x, const std::vector<int> &labels,
                      float loss_scale)
{
    Tensor logits = forward(x);
    GradHealth health;
    health.loss = softmaxCrossEntropy(logits, labels);
    health.loss_finite = std::isfinite(health.loss);
    Tensor dy = softmaxCrossEntropyGrad(logits, labels);
    if (loss_scale != 1.0f)
        dy.apply([loss_scale](float v) { return v * loss_scale; });

    for (size_t li = layers_.size(); li-- > 0;) {
        Dense &d = layers_[li];
        if (li + 1 < layers_.size()) {
            // Backprop through the PACT / ReLU activation (STE).
            Tensor gated = dy;
            float alpha_grad = 0.0f;
            for (int64_t i = 0; i < dy.numel(); ++i) {
                float pre = d.pre_act[i];
                if (cfg_.use_pact) {
                    PactQuantizer q(d.alpha, cfg_.pact_bits);
                    alpha_grad += dy[i] * q.gradAlpha(pre);
                    gated[i] = dy[i] * q.gradInput(pre);
                } else {
                    gated[i] = pre > 0 ? dy[i] : 0.0f;
                }
            }
            d.alpha_grad = alpha_grad + cfg_.alpha_decay * d.alpha;
            dy = denseBackward(d, gated);
        } else {
            dy = denseBackward(d, dy);
        }
    }
    // Per-step finiteness scan over every pending gradient: the
    // sensor the loss scaler's skip-step decision and the recovery
    // ladder both read.
    for (const Dense &d : layers_) {
        for (int64_t i = 0; i < d.w_grad.numel(); ++i) {
            const float g = d.w_grad[i];
            if (!std::isfinite(g))
                health.grads_finite = false;
            else
                health.grad_max_abs =
                    std::max(health.grad_max_abs, std::abs(g));
        }
        for (int64_t i = 0; i < d.b_grad.numel(); ++i) {
            const float g = d.b_grad[i];
            if (!std::isfinite(g))
                health.grads_finite = false;
            else
                health.grad_max_abs =
                    std::max(health.grad_max_abs, std::abs(g));
        }
        if (cfg_.use_pact && !std::isfinite(d.alpha_grad))
            health.grads_finite = false;
    }
    return health;
}

void
Mlp::applyStep(float inv_scale)
{
    for (auto &d : layers_)
        applyUpdates(d, inv_scale);
}

float
Mlp::trainStep(const Tensor &x, const std::vector<int> &labels)
{
    const GradHealth health = computeGradients(x, labels);
    applyStep();
    return health.loss;
}

void
Mlp::train(const Dataset &train, int epochs, int64_t batch_size)
{
    for (int e = 0; e < epochs; ++e) {
        for (int64_t b = 0; b + batch_size <= train.size();
             b += batch_size) {
            Dataset mb = train.slice(b, batch_size);
            trainStep(mb.features, mb.labels);
        }
    }
}

double
Mlp::evaluate(const Dataset &test)
{
    Tensor logits = forward(test.features);
    return accuracy(logits, test.labels);
}

double
Mlp::evaluateInt(const Dataset &test, unsigned width,
                 bool keep_edges_fp16)
{
    rapid_assert(cfg_.use_pact, "INT deployment requires PACT training");
    Tensor h = test.features;
    for (size_t i = 0; i < layers_.size(); ++i) {
        Dense &d = layers_[i];
        const bool edge = (i == 0 || i + 1 == layers_.size());
        Tensor y({h.dim(0), d.w.dim(0)});
        if (edge && keep_edges_fp16) {
            y = fp16Matmul(h, transpose(d.w), cfg_.exec);
        } else {
            // Input of a hidden layer is post-PACT of layer i-1:
            // bounded to [0, alpha_{i-1}] and safe to quantize.
            PactQuantizer act_q(layers_[i - 1].alpha, width);
            SawbQuantizer wt_q(d.w.storage(), width);
            y = intMatmul(h, act_q, transpose(d.w), wt_q, width,
                          cfg_.exec);
        }
        y = biasAdd(y, d.b);
        if (i + 1 < layers_.size()) {
            const float alpha = d.alpha;
            y.apply([alpha](float v) {
                return std::clamp(v, 0.0f, alpha);
            });
        }
        h = std::move(y);
    }
    return accuracy(h, test.labels);
}

float
Mlp::pactAlpha(size_t i) const
{
    rapid_assert(i < layers_.size(), "layer index out of range");
    return layers_[i].alpha;
}

void
Mlp::setPrecision(TrainPrecision precision)
{
    cfg_.precision = precision;
}

void
Mlp::setFaultInjector(const FaultInjector *injector)
{
    injector_ = injector;
}

bool
Mlp::weightsFinite() const
{
    for (const Dense &d : layers_) {
        if (!allFinite(d.w.storage()) || !allFinite(d.b.storage()))
            return false;
        if (cfg_.use_pact && !std::isfinite(d.alpha))
            return false;
    }
    return true;
}

MlpState
Mlp::exportState() const
{
    MlpState state;
    state.precision = cfg_.precision;
    // The textual mt19937_64 representation is stable across runs and
    // platforms with the same libstdc++ wording; it round-trips the
    // stream position exactly.
    std::ostringstream oss;
    Rng rng_copy = rng_;
    oss << rng_copy.engine();
    state.rng = oss.str();
    for (const Dense &d : layers_) {
        DenseState ls;
        ls.w = d.w.storage();
        ls.b = d.b.storage();
        ls.w_vel = d.w_vel.storage();
        ls.b_vel = d.b_vel.storage();
        ls.alpha = d.alpha;
        ls.alpha_vel = d.alpha_vel;
        state.layers.push_back(std::move(ls));
    }
    return state;
}

void
Mlp::importState(const MlpState &state)
{
    RAPID_CHECK_ARG(state.layers.size() == layers_.size(),
                    "MlpState holds ", state.layers.size(),
                    " layers but the model has ", layers_.size());
    for (size_t i = 0; i < layers_.size(); ++i) {
        const DenseState &ls = state.layers[i];
        Dense &d = layers_[i];
        RAPID_CHECK_ARG(
            ls.w.size() == size_t(d.w.numel()) &&
                ls.b.size() == size_t(d.b.numel()) &&
                ls.w_vel.size() == size_t(d.w_vel.numel()) &&
                ls.b_vel.size() == size_t(d.b_vel.numel()),
            "MlpState layer ", i, " shape mismatch");
    }
    cfg_.precision = state.precision;
    std::istringstream iss(state.rng);
    iss >> rng_.engine();
    RAPID_CHECK_ARG(!iss.fail(),
                    "MlpState.rng does not parse as an mt19937_64 "
                    "stream state");
    for (size_t i = 0; i < layers_.size(); ++i) {
        const DenseState &ls = state.layers[i];
        Dense &d = layers_[i];
        d.w.storage() = ls.w;
        d.b.storage() = ls.b;
        d.w_vel.storage() = ls.w_vel;
        d.b_vel.storage() = ls.b_vel;
        d.alpha = ls.alpha;
        d.alpha_vel = ls.alpha_vel;
        d.alpha_grad = 0.0f;
    }
}

ParityResult
runTrainingParity(TrainPrecision precision, const Dataset &train,
                  const Dataset &test, int epochs, int64_t batch)
{
    MlpConfig base;
    base.dims = {train.featureDim(), 48, 48,
                 1 + *std::max_element(train.labels.begin(),
                                       train.labels.end())};
    base.precision = TrainPrecision::FP32;
    base.seed = 99;

    MlpConfig reduced = base;
    reduced.precision = precision;

    Mlp fp32_model(base);
    fp32_model.train(train, epochs, batch);
    Mlp reduced_model(reduced);
    reduced_model.train(train, epochs, batch);

    return {fp32_model.evaluate(test), reduced_model.evaluate(test)};
}

ParityResult
runInferenceParity(unsigned width, const Dataset &train,
                   const Dataset &test, int epochs, int64_t batch)
{
    MlpConfig cfg;
    cfg.dims = {train.featureDim(), 48, 48,
                1 + *std::max_element(train.labels.begin(),
                                      train.labels.end())};
    cfg.precision = TrainPrecision::FP32;
    cfg.use_pact = true;
    cfg.pact_bits = width;
    cfg.seed = 99;

    Mlp model(cfg);
    model.train(train, epochs, batch);
    return {model.evaluate(test), model.evaluateInt(test, width)};
}

} // namespace rapid
