#include "func/trainer.hh"

#include <algorithm>
#include <cmath>

namespace rapid {

Mlp::Mlp(const MlpConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
    rapid_assert(cfg.dims.size() >= 2, "MLP needs at least one layer");
    for (size_t i = 0; i + 1 < cfg.dims.size(); ++i) {
        Dense d;
        int64_t in = cfg.dims[i];
        int64_t out = cfg.dims[i + 1];
        d.w = Tensor({out, in});
        d.w.fillKaiming(rng_, in);
        d.b = Tensor({out});
        d.w_vel = Tensor({out, in});
        d.b_vel = Tensor({out});
        d.alpha = cfg.pact_alpha_init;
        layers_.push_back(std::move(d));
    }
}

Tensor
Mlp::gemm(const Tensor &a, Fp8Kind a_kind, const Tensor &b,
          Fp8Kind b_kind) const
{
    switch (cfg_.precision) {
      case TrainPrecision::FP32:
        return matmul(a, b);
      case TrainPrecision::FP16:
        return fp16Matmul(a, b, cfg_.exec);
      case TrainPrecision::HFP8:
        return hfp8Matmul(a, a_kind, b, b_kind, cfg_.exec);
    }
    rapid_panic("unknown training precision");
}

Tensor
Mlp::denseForward(Dense &d, const Tensor &x)
{
    d.x_cache = x;
    // Forward GEMM: both operands in the FP8 forward format (Fig 3).
    Tensor y = gemm(x, Fp8Kind::Forward, transpose(d.w),
                    Fp8Kind::Forward);
    return biasAdd(y, d.b);
}

Tensor
Mlp::forward(const Tensor &x)
{
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        Dense &d = layers_[i];
        Tensor y = denseForward(d, h);
        d.pre_act = y;
        if (i + 1 < layers_.size()) {
            if (cfg_.use_pact) {
                const float alpha = d.alpha;
                y.apply([alpha](float v) {
                    return std::clamp(v, 0.0f, alpha);
                });
            } else {
                y.apply([](float v) { return v > 0 ? v : 0.0f; });
            }
        }
        h = std::move(y);
    }
    return h;
}

Tensor
Mlp::denseBackward(Dense &d, const Tensor &dy)
{
    // Weight-gradient GEMM: errors in the FP8 backward format, cached
    // activations in the forward format (Fig 3).
    d.w_grad = gemm(transpose(dy), Fp8Kind::Backward, d.x_cache,
                    Fp8Kind::Forward);
    // Bias gradient: column reduction, performed on the SFU in FP32.
    d.b_grad = Tensor({dy.dim(1)});
    for (int64_t j = 0; j < dy.dim(1); ++j) {
        double acc = 0.0;
        for (int64_t i = 0; i < dy.dim(0); ++i)
            acc += dy.at(i, j);
        d.b_grad[j] = float(acc);
    }
    // Data-gradient GEMM: errors (backward format) x weights (forward).
    return gemm(dy, Fp8Kind::Backward, d.w, Fp8Kind::Forward);
}

void
Mlp::applyUpdates(Dense &d)
{
    const float lr = cfg_.learning_rate;
    const float mom = cfg_.momentum;
    for (int64_t i = 0; i < d.w.numel(); ++i) {
        d.w_vel[i] = mom * d.w_vel[i] - lr * d.w_grad[i];
        d.w[i] += d.w_vel[i];
    }
    for (int64_t i = 0; i < d.b.numel(); ++i) {
        d.b_vel[i] = mom * d.b_vel[i] - lr * d.b_grad[i];
        d.b[i] += d.b_vel[i];
    }
    if (cfg_.use_pact) {
        d.alpha_vel = mom * d.alpha_vel
                      - lr * cfg_.alpha_lr_scale * d.alpha_grad;
        d.alpha = std::max(0.1f, d.alpha + d.alpha_vel);
    }
}

float
Mlp::trainStep(const Tensor &x, const std::vector<int> &labels)
{
    Tensor logits = forward(x);
    float loss = softmaxCrossEntropy(logits, labels);
    Tensor dy = softmaxCrossEntropyGrad(logits, labels);

    for (size_t li = layers_.size(); li-- > 0;) {
        Dense &d = layers_[li];
        if (li + 1 < layers_.size()) {
            // Backprop through the PACT / ReLU activation (STE).
            Tensor gated = dy;
            float alpha_grad = 0.0f;
            for (int64_t i = 0; i < dy.numel(); ++i) {
                float pre = d.pre_act[i];
                if (cfg_.use_pact) {
                    PactQuantizer q(d.alpha, cfg_.pact_bits);
                    alpha_grad += dy[i] * q.gradAlpha(pre);
                    gated[i] = dy[i] * q.gradInput(pre);
                } else {
                    gated[i] = pre > 0 ? dy[i] : 0.0f;
                }
            }
            d.alpha_grad = alpha_grad + cfg_.alpha_decay * d.alpha;
            dy = denseBackward(d, gated);
        } else {
            dy = denseBackward(d, dy);
        }
    }
    for (auto &d : layers_)
        applyUpdates(d);
    return loss;
}

void
Mlp::train(const Dataset &train, int epochs, int64_t batch_size)
{
    for (int e = 0; e < epochs; ++e) {
        for (int64_t b = 0; b + batch_size <= train.size();
             b += batch_size) {
            Dataset mb = train.slice(b, batch_size);
            trainStep(mb.features, mb.labels);
        }
    }
}

double
Mlp::evaluate(const Dataset &test)
{
    Tensor logits = forward(test.features);
    return accuracy(logits, test.labels);
}

double
Mlp::evaluateInt(const Dataset &test, unsigned width,
                 bool keep_edges_fp16)
{
    rapid_assert(cfg_.use_pact, "INT deployment requires PACT training");
    Tensor h = test.features;
    for (size_t i = 0; i < layers_.size(); ++i) {
        Dense &d = layers_[i];
        const bool edge = (i == 0 || i + 1 == layers_.size());
        Tensor y({h.dim(0), d.w.dim(0)});
        if (edge && keep_edges_fp16) {
            y = fp16Matmul(h, transpose(d.w), cfg_.exec);
        } else {
            // Input of a hidden layer is post-PACT of layer i-1:
            // bounded to [0, alpha_{i-1}] and safe to quantize.
            PactQuantizer act_q(layers_[i - 1].alpha, width);
            SawbQuantizer wt_q(d.w.storage(), width);
            y = intMatmul(h, act_q, transpose(d.w), wt_q, width,
                          cfg_.exec);
        }
        y = biasAdd(y, d.b);
        if (i + 1 < layers_.size()) {
            const float alpha = d.alpha;
            y.apply([alpha](float v) {
                return std::clamp(v, 0.0f, alpha);
            });
        }
        h = std::move(y);
    }
    return accuracy(h, test.labels);
}

float
Mlp::pactAlpha(size_t i) const
{
    rapid_assert(i < layers_.size(), "layer index out of range");
    return layers_[i].alpha;
}

ParityResult
runTrainingParity(TrainPrecision precision, const Dataset &train,
                  const Dataset &test, int epochs, int64_t batch)
{
    MlpConfig base;
    base.dims = {train.featureDim(), 48, 48,
                 1 + *std::max_element(train.labels.begin(),
                                       train.labels.end())};
    base.precision = TrainPrecision::FP32;
    base.seed = 99;

    MlpConfig reduced = base;
    reduced.precision = precision;

    Mlp fp32_model(base);
    fp32_model.train(train, epochs, batch);
    Mlp reduced_model(reduced);
    reduced_model.train(train, epochs, batch);

    return {fp32_model.evaluate(test), reduced_model.evaluate(test)};
}

ParityResult
runInferenceParity(unsigned width, const Dataset &train,
                   const Dataset &test, int epochs, int64_t batch)
{
    MlpConfig cfg;
    cfg.dims = {train.featureDim(), 48, 48,
                1 + *std::max_element(train.labels.begin(),
                                      train.labels.end())};
    cfg.precision = TrainPrecision::FP32;
    cfg.use_pact = true;
    cfg.pact_bits = width;
    cfg.seed = 99;

    Mlp model(cfg);
    model.train(train, epochs, batch);
    return {model.evaluate(test), model.evaluateInt(test, width)};
}

} // namespace rapid
