/**
 * @file
 * Functional executors that run tensor operations through the emulated
 * RaPiD datapaths:
 *
 *   - INT4/INT2 conv & GEMM: PACT-quantized activations and
 *     SaWB-quantized weights multiplied on the FXU pipeline, chunked
 *     integer partial sums emitted as saturating INT16 and reduced on
 *     the SFU (Section III-A.3).
 *   - HFP8 conv & GEMM: operands quantized to the FP8 flavour the pass
 *     requires, converted to FP9, multiplied, and chunk-accumulated in
 *     DLFloat16 (Section III-A.2).
 *   - FP16 conv & GEMM: the baseline DLFloat16 path.
 *
 * All executors produce FP16-representable outputs like the hardware's
 * south datapath, and are validated against the FP32 golden operators.
 */

#ifndef RAPID_FUNC_QUANTIZED_OPS_HH
#define RAPID_FUNC_QUANTIZED_OPS_HH

#include "precision/chunk_accumulator.hh"
#include "precision/mpe_datapath.hh"
#include "precision/quantize.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace rapid {

/** Execution knobs shared by the reduced-precision executors. */
struct ExecConfig
{
    size_t chunk_size = 64;  ///< LRF-resident reduction length
    bool fp32_outer = true;  ///< SFU inter-chunk reduction precision
    int fwd_bias = 4;        ///< programmable FP8 (1,4,3) exponent bias
    Rounding rounding = Rounding::NearestEven;
};

/** FP16 (DLFloat16) GEMM: (M,K) x (K,N), FP16-rounded accumulation. */
Tensor fp16Matmul(const Tensor &a, const Tensor &b,
                  const ExecConfig &cfg = {});

/** FP16 convolution with chunked DLFloat16 accumulation. */
Tensor fp16Conv2d(const Tensor &input, const Tensor &weight,
                  const ConvParams &params = {},
                  const ExecConfig &cfg = {});

/**
 * HFP8 GEMM. @p a_kind / @p b_kind select the FP8 flavour of each
 * operand tensor: (Forward, Forward) for inference/forward pass,
 * mixed for backward and gradient GEMMs (Figure 3).
 */
Tensor hfp8Matmul(const Tensor &a, Fp8Kind a_kind, const Tensor &b,
                  Fp8Kind b_kind, const ExecConfig &cfg = {});

/** HFP8 convolution (forward-format operands). */
Tensor hfp8Conv2d(const Tensor &input, const Tensor &weight,
                  const ConvParams &params = {},
                  const ExecConfig &cfg = {});

/**
 * INT4/INT2 GEMM through the FXU pipeline. Activations in @p a are
 * quantized by @p act_q (PACT levels, so @p a should be post-ReLU);
 * weights in @p b by @p wt_q. Integer chunk sums saturate to INT16,
 * then dequantized partial results reduce on the SFU in FP32 and are
 * emitted as DLFloat16.
 */
Tensor intMatmul(const Tensor &a, const PactQuantizer &act_q,
                 const Tensor &b, const SawbQuantizer &wt_q,
                 unsigned width, const ExecConfig &cfg = {});

/** INT4/INT2 convolution (same quantization scheme as intMatmul). */
Tensor intConv2d(const Tensor &input, const PactQuantizer &act_q,
                 const Tensor &weight, const SawbQuantizer &wt_q,
                 unsigned width, const ConvParams &params = {},
                 const ExecConfig &cfg = {});

/** Quantize every element of @p t to the given FP8 flavour. */
Tensor quantizeTensorFp8(const Tensor &t, Fp8Kind kind,
                         const ExecConfig &cfg = {});

/** Quantize every element of @p t to DLFloat16. */
Tensor quantizeTensorFp16(const Tensor &t,
                          Rounding rounding = Rounding::NearestEven);

} // namespace rapid

#endif // RAPID_FUNC_QUANTIZED_OPS_HH
