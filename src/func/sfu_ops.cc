#include "func/sfu_ops.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "precision/float_format.hh"
#include "tensor/ops.hh"

namespace rapid {
namespace sfu {

float
fastExp(float x)
{
    // Range-reduce: e^x = 2^(x * log2(e)) = 2^i * 2^f, f in [0, 1).
    // The fraction uses a degree-3 minimax-style polynomial for 2^f.
    if (x > 88.0f)
        return std::numeric_limits<float>::infinity();
    if (x < -87.0f)
        return 0.0f;
    const float z = x * 1.44269504f; // log2(e)
    const float i = std::floor(z);
    const float f = z - i;
    // 2^f ~ 1 + f*(c1 + f*(c2 + f*c3)) with coefficients chosen so
    // the ends match exactly (max rel. error ~2e-4).
    const float p =
        1.0f + f * (0.6951f + f * (0.2262f + f * 0.0789f));
    return std::ldexp(p, int(i));
}

float
fastLog(float x)
{
    rapid_assert(x > 0.0f, "fastLog of non-positive value");
    // x = 2^e * m with m in [1, 2): ln x = e*ln2 + ln m.
    int e = 0;
    float m = std::frexp(x, &e); // m in [0.5, 1)
    m *= 2.0f;
    --e;
    // ln m over [1, 2) via a degree-5 minimax polynomial in (m - 1)
    // (Hart-style coefficients, ~1e-5 max error).
    const float t = m - 1.0f;
    const float p =
        t * (0.99949556f +
             t * (-0.49190896f +
                  t * (0.28947478f +
                       t * (-0.13606275f + t * 0.03215845f))));
    return float(e) * 0.69314718f + p;
}

float
fastReciprocal(float x)
{
    rapid_assert(x != 0.0f, "fastReciprocal of zero");
    // Bit-trick seed followed by two Newton-Raphson refinements:
    // y' = y * (2 - x*y).
    uint32_t bits = std::bit_cast<uint32_t>(x);
    uint32_t seed_bits = 0x7EF311C3u - bits;
    float y = std::bit_cast<float>(seed_bits);
    y = y * (2.0f - x * y);
    y = y * (2.0f - x * y);
    return y;
}

float
fastRsqrt(float x)
{
    rapid_assert(x > 0.0f, "fastRsqrt of non-positive value");
    // The classic 0x5f3759df seed plus two Newton steps.
    uint32_t bits = std::bit_cast<uint32_t>(x);
    bits = 0x5f3759dfu - (bits >> 1);
    float y = std::bit_cast<float>(bits);
    y = y * (1.5f - 0.5f * x * y * y);
    y = y * (1.5f - 0.5f * x * y * y);
    return y;
}

float
fastSqrt(float x)
{
    if (x == 0.0f)
        return 0.0f;
    return x * fastRsqrt(x);
}

float
fastSigmoid(float x)
{
    // sigmoid(-x) = 1 - sigmoid(x): evaluate on the stable side.
    if (x >= 0.0f) {
        const float e = fastExp(-x);
        return fastReciprocal(1.0f + e);
    }
    const float e = fastExp(x);
    return e * fastReciprocal(1.0f + e);
}

float
fastTanh(float x)
{
    // tanh(x) = 2*sigmoid(2x) - 1.
    return 2.0f * fastSigmoid(2.0f * x) - 1.0f;
}

float
fastGelu(float x)
{
    // tanh-form GELU: 0.5x(1 + tanh(sqrt(2/pi)(x + 0.044715 x^3))).
    const float u = 0.7978845608f * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + fastTanh(u));
}

} // namespace sfu

namespace {

template <typename Fast, typename Accurate>
Tensor
applySfu(const Tensor &x, SfuMode mode, Fast fast, Accurate accurate)
{
    Tensor out = x;
    if (mode == SfuMode::Fast)
        out.apply([&](float v) {
            return dlfloat16().quantize(fast(v));
        });
    else
        out.apply([&](float v) {
            return dlfloat16().quantize(float(accurate(double(v))));
        });
    return out;
}

} // namespace

Tensor
sfuSigmoid(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastSigmoid, [](double v) {
        return 1.0 / (1.0 + std::exp(-v));
    });
}

Tensor
sfuTanh(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastTanh,
                    [](double v) { return std::tanh(v); });
}

Tensor
sfuExp(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastExp,
                    [](double v) { return std::exp(v); });
}

Tensor
sfuGelu(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastGelu, [](double v) {
        return 0.5 * v * (1.0 + std::erf(v / std::sqrt(2.0)));
    });
}

Tensor
sfuReciprocal(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastReciprocal,
                    [](double v) { return 1.0 / v; });
}

Tensor
sfuSqrt(const Tensor &x, SfuMode mode)
{
    return applySfu(x, mode, sfu::fastSqrt,
                    [](double v) { return std::sqrt(v); });
}

Tensor
sfuSoftmax(const Tensor &x, SfuMode mode)
{
    rapid_assert(x.rank() == 2, "sfuSoftmax expects rank-2 logits");
    Tensor out = x;
    for (int64_t i = 0; i < x.dim(0); ++i) {
        float mx = x.at(i, 0);
        for (int64_t j = 1; j < x.dim(1); ++j)
            mx = std::max(mx, x.at(i, j));
        // Fast exp per element, FP32 row reduction on the SFU.
        double sum = 0.0;
        for (int64_t j = 0; j < x.dim(1); ++j) {
            float e = mode == SfuMode::Fast
                          ? sfu::fastExp(x.at(i, j) - mx)
                          : std::exp(x.at(i, j) - mx);
            out.at(i, j) = e;
            sum += e;
        }
        const float inv = mode == SfuMode::Fast
                              ? sfu::fastReciprocal(float(sum))
                              : float(1.0 / sum);
        for (int64_t j = 0; j < x.dim(1); ++j)
            out.at(i, j) =
                dlfloat16().quantize(out.at(i, j) * inv);
    }
    return out;
}

Tensor
sfuTranspose(const Tensor &x)
{
    return transpose(x);
}

double
sfuMaxError(float (*fast_fn)(float), double (*ref_fn)(double),
            const std::vector<float> &samples)
{
    double max_err = 0.0;
    for (float s : samples) {
        double ref = ref_fn(double(s));
        double err = std::abs(double(fast_fn(s)) - ref);
        // Relative where the value is large, absolute near zero.
        max_err = std::max(max_err,
                           err / std::max(1.0, std::abs(ref)));
    }
    return max_err;
}

} // namespace rapid
