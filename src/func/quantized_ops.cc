#include "func/quantized_ops.hh"

#include <cmath>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "precision/decode_lut.hh"

namespace rapid {

namespace {

/**
 * Core reduction shared by all float-path executors: accumulate the
 * element products of two prepared operand vectors with chunked
 * DLFloat16 accumulation.
 */
float
chunkedDot(const float *a, const float *b, int64_t n,
           const ExecConfig &cfg)
{
    ChunkAccumulator acc(cfg.chunk_size, cfg.fp32_outer, cfg.rounding);
    for (int64_t i = 0; i < n; ++i) {
        if (a[i] == 0.0f || b[i] == 0.0f)
            continue; // zero-gated FMA passes the accumulator through
        const double term = double(a[i]) * double(b[i]);
        // A non-finite product means a poisoned operand (upstream
        // NaN, e.g. an injected fault that landed in a cached
        // activation or master weight). Guard before the accumulator
        // sees it — the accumulator's invariant is that terms are
        // finite — and surface a structured, catchable event in every
        // build type instead of silently propagating NaN through the
        // training step.
        RAPID_CHECK_NUMERIC(std::isfinite(term),
                            "non-finite product at element ", i,
                            " of a ", n, "-element chunked dot: a "
                            "poisoned operand reached the training "
                            "accumulation");
        acc.add(term);
    }
    // DLFloat16 saturates, so the finite term stream above must
    // reduce to a finite total; this backstop is once per dot.
    RAPID_CHECK_NUMERIC(std::isfinite(acc.total()),
                        "non-finite chunked dot product over ", n,
                        " elements: a poisoned operand reached the "
                        "training accumulation");
    return dlfloat16().quantize(acc.total(), cfg.rounding);
}

/** Gather a conv receptive field into contiguous operand vectors. */
struct Patch
{
    std::vector<float> act;
    std::vector<float> wt;
};

template <typename T>
void
gatherPatch(const Tensor &input, const T &weight_like, int64_t in_n,
            int64_t oc, int64_t oy, int64_t ox, const ConvParams &p,
            int64_t cig, int64_t co_per_g, Patch &patch)
{
    const int64_t h = input.dim(2), w = input.dim(3);
    const int64_t kh = weight_like.dim(2), kw = weight_like.dim(3);
    const int64_t g = oc / co_per_g;
    patch.act.clear();
    patch.wt.clear();
    for (int64_t icg = 0; icg < cig; ++icg) {
        const int64_t ic = g * cig + icg;
        for (int64_t ky = 0; ky < kh; ++ky) {
            const int64_t iy = oy * p.stride + ky - p.pad;
            for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = ox * p.stride + kx - p.pad;
                const bool inside =
                    iy >= 0 && iy < h && ix >= 0 && ix < w;
                patch.act.push_back(
                    inside ? input.at(in_n, ic, iy, ix) : 0.0f);
                patch.wt.push_back(weight_like.at(oc, icg, ky, kx));
            }
        }
    }
}

Tensor
quantizeWith(const Tensor &t, const FloatFormat &fmt, Rounding rounding)
{
    Tensor out = t;
    out.apply([&](float v) { return fmt.quantize(v, rounding); });
    return out;
}

} // namespace

Tensor
quantizeTensorFp8(const Tensor &t, Fp8Kind kind, const ExecConfig &cfg)
{
    // Tabulated decode: one scalar decode per encoding to fill the
    // 256-entry table, then a lookup per element instead of the full
    // bit-manipulation decode (bit-identical; see decode_lut.hh).
    const Fp8DecodeLut lut((kind == Fp8Kind::Forward)
                               ? fp8e4m3(cfg.fwd_bias)
                               : fp8e5m2());
    Tensor out = t;
    out.apply([&](float v) { return lut.quantize(v, cfg.rounding); });
    return out;
}

Tensor
quantizeTensorFp16(const Tensor &t, Rounding rounding)
{
    return quantizeWith(t, dlfloat16(), rounding);
}

Tensor
fp16Matmul(const Tensor &a, const Tensor &b, const ExecConfig &cfg)
{
    Tensor qa = quantizeTensorFp16(a, cfg.rounding);
    Tensor qbt = transpose(quantizeTensorFp16(b, cfg.rounding));
    const int64_t m = qa.dim(0), k = qa.dim(1), n = qbt.dim(0);
    Tensor out({m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            out.at(i, j) = chunkedDot(qa.data() + i * k,
                                      qbt.data() + j * k, k, cfg);
    return out;
}

Tensor
hfp8Matmul(const Tensor &a, Fp8Kind a_kind, const Tensor &b,
           Fp8Kind b_kind, const ExecConfig &cfg)
{
    // Quantize each operand tensor once (the FP8 -> FP9 input stage is
    // exact, so the FP8 value is what the multiplier sees).
    Tensor qa = quantizeTensorFp8(a, a_kind, cfg);
    Tensor qbt = transpose(quantizeTensorFp8(b, b_kind, cfg));
    const int64_t m = qa.dim(0), k = qa.dim(1), n = qbt.dim(0);
    Tensor out({m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            out.at(i, j) = chunkedDot(qa.data() + i * k,
                                      qbt.data() + j * k, k, cfg);
    return out;
}

Tensor
fp16Conv2d(const Tensor &input, const Tensor &weight,
           const ConvParams &p, const ExecConfig &cfg)
{
    Tensor qi = quantizeTensorFp16(input, cfg.rounding);
    Tensor qw = quantizeTensorFp16(weight, cfg.rounding);
    const int64_t n = qi.dim(0), co = qw.dim(0);
    const int64_t cig = qw.dim(1);
    const int64_t ho = convOutDim(qi.dim(2), qw.dim(2), p.stride, p.pad);
    const int64_t wo = convOutDim(qi.dim(3), qw.dim(3), p.stride, p.pad);
    const int64_t co_per_g = co / p.groups;
    Tensor out({n, co, ho, wo});
    Patch patch;
    for (int64_t in_n = 0; in_n < n; ++in_n)
        for (int64_t oc = 0; oc < co; ++oc)
            for (int64_t oy = 0; oy < ho; ++oy)
                for (int64_t ox = 0; ox < wo; ++ox) {
                    gatherPatch(qi, qw, in_n, oc, oy, ox, p, cig,
                                co_per_g, patch);
                    out.at(in_n, oc, oy, ox) =
                        chunkedDot(patch.act.data(), patch.wt.data(),
                                   int64_t(patch.act.size()), cfg);
                }
    return out;
}

Tensor
hfp8Conv2d(const Tensor &input, const Tensor &weight,
           const ConvParams &p, const ExecConfig &cfg)
{
    Tensor qi = quantizeTensorFp8(input, Fp8Kind::Forward, cfg);
    Tensor qw = quantizeTensorFp8(weight, Fp8Kind::Forward, cfg);
    const int64_t n = qi.dim(0), co = qw.dim(0);
    const int64_t cig = qw.dim(1);
    const int64_t ho = convOutDim(qi.dim(2), qw.dim(2), p.stride, p.pad);
    const int64_t wo = convOutDim(qi.dim(3), qw.dim(3), p.stride, p.pad);
    const int64_t co_per_g = co / p.groups;
    Tensor out({n, co, ho, wo});
    Patch patch;
    for (int64_t in_n = 0; in_n < n; ++in_n)
        for (int64_t oc = 0; oc < co; ++oc)
            for (int64_t oy = 0; oy < ho; ++oy)
                for (int64_t ox = 0; ox < wo; ++ox) {
                    gatherPatch(qi, qw, in_n, oc, oy, ox, p, cig,
                                co_per_g, patch);
                    out.at(in_n, oc, oy, ox) =
                        chunkedDot(patch.act.data(), patch.wt.data(),
                                   int64_t(patch.act.size()), cfg);
                }
    return out;
}

namespace {

/**
 * Integer chunked dot product: int32 intra-chunk accumulation, INT16
 * saturation at chunk boundaries (the MPE's south-bus width), FP32
 * inter-chunk reduction on the SFU.
 */
float
intChunkedDot(const int *a_levels, const int *b_levels, int64_t n,
              float scale, const ExecConfig &cfg)
{
    double outer = 0.0;
    int64_t chunk_acc = 0;
    size_t in_chunk = 0;
    for (int64_t i = 0; i < n; ++i) {
        chunk_acc += int64_t(a_levels[i]) * int64_t(b_levels[i]);
        if (++in_chunk == cfg.chunk_size) {
            outer += double(saturateToInt16(chunk_acc));
            chunk_acc = 0;
            in_chunk = 0;
        }
    }
    if (in_chunk)
        outer += double(saturateToInt16(chunk_acc));
    return dlfloat16().quantize(float(outer * double(scale)),
                                cfg.rounding);
}

std::vector<int>
pactLevels(const Tensor &t, const PactQuantizer &q)
{
    std::vector<int> out(size_t(t.numel()));
    for (int64_t i = 0; i < t.numel(); ++i)
        out[size_t(i)] = q.quantizeLevel(t[i]);
    return out;
}

std::vector<int>
sawbLevels(const Tensor &t, const SawbQuantizer &q)
{
    std::vector<int> out(size_t(t.numel()));
    for (int64_t i = 0; i < t.numel(); ++i)
        out[size_t(i)] = q.quantizeLevel(t[i]);
    return out;
}

} // namespace

Tensor
intMatmul(const Tensor &a, const PactQuantizer &act_q, const Tensor &b,
          const SawbQuantizer &wt_q, unsigned width,
          const ExecConfig &cfg)
{
    rapid_assert(width == 4 || width == 2, "FXU width must be 4 or 2");
    rapid_assert(act_q.bits() == width && wt_q.bits() == width,
                 "quantizer width mismatch");
    const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
    std::vector<int> qa = pactLevels(a, act_q);
    std::vector<int> qb = sawbLevels(transpose(b), wt_q);
    const float scale = act_q.scale() * wt_q.scale();
    Tensor out({m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j)
            out.at(i, j) = intChunkedDot(qa.data() + i * k,
                                         qb.data() + j * k, k, scale,
                                         cfg);
    return out;
}

Tensor
intConv2d(const Tensor &input, const PactQuantizer &act_q,
          const Tensor &weight, const SawbQuantizer &wt_q,
          unsigned width, const ConvParams &p, const ExecConfig &cfg)
{
    rapid_assert(width == 4 || width == 2, "FXU width must be 4 or 2");
    const int64_t n = input.dim(0), co = weight.dim(0);
    const int64_t cig = weight.dim(1);
    const int64_t kh = weight.dim(2), kw = weight.dim(3);
    const int64_t h = input.dim(2), w = input.dim(3);
    const int64_t ho = convOutDim(h, kh, p.stride, p.pad);
    const int64_t wo = convOutDim(w, kw, p.stride, p.pad);
    const int64_t co_per_g = co / p.groups;
    const float scale = act_q.scale() * wt_q.scale();

    std::vector<int> qi = pactLevels(input, act_q);
    std::vector<int> qw = sawbLevels(weight, wt_q);

    auto act_level = [&](int64_t nn, int64_t c, int64_t y,
                         int64_t x) -> int {
        return qi[size_t(((nn * input.dim(1) + c) * h + y) * w + x)];
    };
    auto wt_level = [&](int64_t oc, int64_t icg, int64_t ky,
                        int64_t kx) -> int {
        return qw[size_t(((oc * cig + icg) * kh + ky) * kw + kx)];
    };

    Tensor out({n, co, ho, wo});
    std::vector<int> pa, pw;
    for (int64_t in_n = 0; in_n < n; ++in_n) {
        for (int64_t oc = 0; oc < co; ++oc) {
            const int64_t g = oc / co_per_g;
            for (int64_t oy = 0; oy < ho; ++oy) {
                for (int64_t ox = 0; ox < wo; ++ox) {
                    pa.clear();
                    pw.clear();
                    for (int64_t icg = 0; icg < cig; ++icg) {
                        const int64_t ic = g * cig + icg;
                        for (int64_t ky = 0; ky < kh; ++ky) {
                            const int64_t iy = oy * p.stride + ky - p.pad;
                            for (int64_t kx = 0; kx < kw; ++kx) {
                                const int64_t ix =
                                    ox * p.stride + kx - p.pad;
                                const bool inside = iy >= 0 && iy < h &&
                                                    ix >= 0 && ix < w;
                                pa.push_back(
                                    inside ? act_level(in_n, ic, iy, ix)
                                           : 0);
                                pw.push_back(wt_level(oc, icg, ky, kx));
                            }
                        }
                    }
                    out.at(in_n, oc, oy, ox) = intChunkedDot(
                        pa.data(), pw.data(), int64_t(pa.size()), scale,
                        cfg);
                }
            }
        }
    }
    return out;
}

} // namespace rapid
