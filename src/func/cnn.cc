#include "func/cnn.hh"

#include <algorithm>
#include <numeric>

namespace rapid {

ImageDataset
ImageDataset::slice(int64_t begin, int64_t count) const
{
    rapid_assert(begin >= 0 && begin + count <= size(),
                 "image dataset slice out of range");
    const int64_t c = images.dim(1), h = images.dim(2),
                  w = images.dim(3);
    ImageDataset out;
    out.images = Tensor({count, c, h, w});
    out.labels.resize(size_t(count));
    const int64_t per = c * h * w;
    for (int64_t i = 0; i < count; ++i) {
        for (int64_t j = 0; j < per; ++j)
            out.images[i * per + j] = images[(begin + i) * per + j];
        out.labels[size_t(i)] = labels[size_t(begin + i)];
    }
    return out;
}

ImageDataset
makeStripes(Rng &rng, int64_t samples_per_class, double noise)
{
    const int64_t n = 2 * samples_per_class, hw = 8;
    ImageDataset ds;
    ds.images = Tensor({n, 1, hw, hw});
    ds.labels.resize(size_t(n));
    std::vector<int64_t> order(static_cast<size_t>(n), 0);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (int64_t s = 0; s < n; ++s) {
        const int64_t slot = order[size_t(s)];
        const int cls = s < samples_per_class ? 0 : 1;
        const int phase = int(rng.uniformInt(0, 1));
        const float amp = float(rng.uniform(0.7, 1.3));
        for (int64_t y = 0; y < hw; ++y) {
            for (int64_t x = 0; x < hw; ++x) {
                const int64_t k = (cls == 0 ? y : x) + phase;
                float v = (k % 2 == 0 ? amp : -amp);
                v += float(rng.gaussian(0.0, noise));
                ds.images.at(slot, 0, y, x) = v;
            }
        }
        ds.labels[size_t(slot)] = cls;
    }
    return ds;
}

namespace {

/** 2x2/2 max pool recording the winning flat index per output. */
Tensor
maxPoolArgmax(const Tensor &x, std::vector<int64_t> &argmax)
{
    const int64_t n = x.dim(0), c = x.dim(1);
    const int64_t ho = x.dim(2) / 2, wo = x.dim(3) / 2;
    Tensor out({n, c, ho, wo});
    argmax.assign(size_t(out.numel()), 0);
    int64_t oi = 0;
    for (int64_t nn = 0; nn < n; ++nn) {
        for (int64_t cc = 0; cc < c; ++cc) {
            for (int64_t oy = 0; oy < ho; ++oy) {
                for (int64_t ox = 0; ox < wo; ++ox, ++oi) {
                    float best = -1e30f;
                    int64_t best_idx = 0;
                    for (int64_t dy = 0; dy < 2; ++dy) {
                        for (int64_t dx = 0; dx < 2; ++dx) {
                            const int64_t iy = oy * 2 + dy;
                            const int64_t ix = ox * 2 + dx;
                            const int64_t idx =
                                ((nn * c + cc) * x.dim(2) + iy) *
                                    x.dim(3) + ix;
                            if (x[idx] > best) {
                                best = x[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[oi] = best;
                    argmax[size_t(oi)] = best_idx;
                }
            }
        }
    }
    return out;
}

Tensor
reluMasked(const Tensor &x)
{
    Tensor out = x;
    out.apply([](float v) { return v > 0 ? v : 0.0f; });
    return out;
}

/** Per-channel bias gradient of an NCHW gradient tensor. */
Tensor
channelSum(const Tensor &g)
{
    Tensor out({g.dim(1)});
    for (int64_t n = 0; n < g.dim(0); ++n)
        for (int64_t c = 0; c < g.dim(1); ++c)
            for (int64_t y = 0; y < g.dim(2); ++y)
                for (int64_t x = 0; x < g.dim(3); ++x)
                    out[c] += g.at(n, c, y, x);
    return out;
}

void
sgdUpdate(Tensor &w, Tensor &v, const Tensor &g, float lr, float mom)
{
    for (int64_t i = 0; i < w.numel(); ++i) {
        v[i] = mom * v[i] - lr * g[i];
        w[i] += v[i];
    }
}

} // namespace

SmallCnn::SmallCnn(const CnnConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
    const int64_t c1 = cfg.conv1_channels, c2 = cfg.conv2_channels;
    w1_ = Tensor({c1, 1, 3, 3});
    w1_.fillKaiming(rng_, 9);
    b1_ = Tensor({c1});
    w2_ = Tensor({c2, c1, 3, 3});
    w2_.fillKaiming(rng_, 9 * c1);
    b2_ = Tensor({c2});
    w3_ = Tensor({cfg.classes, c2});
    w3_.fillKaiming(rng_, c2);
    b3_ = Tensor({cfg.classes});
    v_w1_ = Tensor(w1_.shape());
    v_b1_ = Tensor(b1_.shape());
    v_w2_ = Tensor(w2_.shape());
    v_b2_ = Tensor(b2_.shape());
    v_w3_ = Tensor(w3_.shape());
    v_b3_ = Tensor(b3_.shape());
}

Tensor
SmallCnn::asOperand(const Tensor &t, Fp8Kind kind) const
{
    switch (cfg_.precision) {
      case TrainPrecision::FP32:
        return t;
      case TrainPrecision::FP16:
        return quantizeTensorFp16(t);
      case TrainPrecision::HFP8: {
        ExecConfig ec;
        ec.fwd_bias = cfg_.fwd_bias;
        return quantizeTensorFp8(t, kind, ec);
      }
    }
    rapid_panic("unknown CNN precision");
}

Tensor
SmallCnn::forward(const Tensor &images)
{
    ConvParams p;
    p.pad = 1;
    x_in_ = images;
    Tensor y1 = biasAdd(conv2d(asOperand(images, Fp8Kind::Forward),
                               asOperand(w1_, Fp8Kind::Forward), p),
                        b1_);
    a1_ = reluMasked(y1);
    p1_ = maxPoolArgmax(a1_, pool_argmax_);
    Tensor y2 = biasAdd(conv2d(asOperand(p1_, Fp8Kind::Forward),
                               asOperand(w2_, Fp8Kind::Forward), p),
                        b2_);
    a2_ = reluMasked(y2);
    g2_ = globalAvgPool(a2_);
    return biasAdd(matmul(asOperand(g2_, Fp8Kind::Forward),
                          transpose(asOperand(w3_, Fp8Kind::Forward))),
                   b3_);
}

float
SmallCnn::trainStep(const Tensor &images, const std::vector<int> &labels)
{
    Tensor logits = forward(images);
    const float loss = softmaxCrossEntropy(logits, labels);
    Tensor dlogits = softmaxCrossEntropyGrad(logits, labels);

    ConvParams p;
    p.pad = 1;
    const int64_t n = images.dim(0);

    // FC backward (errors in the backward FP8 format).
    Tensor dq = asOperand(dlogits, Fp8Kind::Backward);
    Tensor dw3 = matmul(transpose(dq), asOperand(g2_, Fp8Kind::Forward));
    Tensor db3({cfg_.classes});
    for (int64_t j = 0; j < cfg_.classes; ++j)
        for (int64_t i = 0; i < n; ++i)
            db3[j] += dlogits.at(i, j);
    Tensor dg2 = matmul(dq, asOperand(w3_, Fp8Kind::Forward));

    // GAP backward: spread evenly over the 4x4 window.
    Tensor da2 = a2_;
    const float inv_hw = 1.0f / float(a2_.dim(2) * a2_.dim(3));
    for (int64_t nn = 0; nn < n; ++nn)
        for (int64_t c = 0; c < a2_.dim(1); ++c)
            for (int64_t y = 0; y < a2_.dim(2); ++y)
                for (int64_t x = 0; x < a2_.dim(3); ++x)
                    da2.at(nn, c, y, x) =
                        dg2.at(nn, c) * inv_hw *
                        (a2_.at(nn, c, y, x) > 0 ? 1.0f : 0.0f);

    Tensor dq2 = asOperand(da2, Fp8Kind::Backward);
    Tensor dw2 = conv2dGradWeight(dq2, asOperand(p1_, Fp8Kind::Forward),
                                  p, 3, 3);
    Tensor db2 = channelSum(da2);
    Tensor dp1 = conv2dGradInput(dq2, asOperand(w2_, Fp8Kind::Forward),
                                 p, p1_.dim(2), p1_.dim(3));

    // Max-pool backward: route to the winners; ReLU masks.
    Tensor da1(a1_.shape());
    for (int64_t i = 0; i < dp1.numel(); ++i) {
        const int64_t src = pool_argmax_[size_t(i)];
        if (a1_[src] > 0)
            da1[src] += dp1[i];
    }

    Tensor dq1 = asOperand(da1, Fp8Kind::Backward);
    Tensor dw1 = conv2dGradWeight(dq1, asOperand(x_in_,
                                                 Fp8Kind::Forward),
                                  p, 3, 3);
    Tensor db1 = channelSum(da1);

    const float lr = cfg_.learning_rate, mom = cfg_.momentum;
    sgdUpdate(w1_, v_w1_, dw1, lr, mom);
    sgdUpdate(b1_, v_b1_, db1, lr, mom);
    sgdUpdate(w2_, v_w2_, dw2, lr, mom);
    sgdUpdate(b2_, v_b2_, db2, lr, mom);
    sgdUpdate(w3_, v_w3_, dw3, lr, mom);
    sgdUpdate(b3_, v_b3_, db3, lr, mom);
    return loss;
}

void
SmallCnn::train(const ImageDataset &train, int epochs,
                int64_t batch_size)
{
    for (int e = 0; e < epochs; ++e) {
        for (int64_t b = 0; b + batch_size <= train.size();
             b += batch_size) {
            ImageDataset mb = train.slice(b, batch_size);
            trainStep(mb.images, mb.labels);
        }
    }
}

double
SmallCnn::evaluate(const ImageDataset &test)
{
    Tensor logits = forward(test.images);
    return accuracy(logits, test.labels);
}

ParityResult
runCnnTrainingParity(TrainPrecision precision, const ImageDataset &train,
                     const ImageDataset &test, int epochs,
                     int64_t batch)
{
    CnnConfig base;
    base.precision = TrainPrecision::FP32;
    CnnConfig reduced = base;
    reduced.precision = precision;

    SmallCnn fp32(base);
    fp32.train(train, epochs, batch);
    SmallCnn red(reduced);
    red.train(train, epochs, batch);
    return {fp32.evaluate(test), red.evaluate(test)};
}

} // namespace rapid
