#include "func/datasets.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rapid {

Dataset
Dataset::slice(int64_t begin, int64_t count) const
{
    rapid_assert(begin >= 0 && begin + count <= size(),
                 "dataset slice out of range");
    Dataset out;
    out.features = Tensor({count, featureDim()});
    out.labels.resize(size_t(count));
    for (int64_t i = 0; i < count; ++i) {
        for (int64_t j = 0; j < featureDim(); ++j)
            out.features.at(i, j) = features.at(begin + i, j);
        out.labels[size_t(i)] = labels[size_t(begin + i)];
    }
    return out;
}

Dataset
makeSpirals(Rng &rng, int64_t samples_per_class, double noise)
{
    const int64_t n = samples_per_class * 2;
    Dataset ds;
    ds.features = Tensor({n, 2});
    ds.labels.resize(size_t(n));
    for (int64_t cls = 0; cls < 2; ++cls) {
        for (int64_t i = 0; i < samples_per_class; ++i) {
            double t = double(i) / double(samples_per_class);
            double r = 0.2 + 0.8 * t;
            double phi = 2.5 * M_PI * t + M_PI * double(cls);
            int64_t row = cls * samples_per_class + i;
            ds.features.at(row, 0) =
                float(r * std::cos(phi) + rng.gaussian(0, noise));
            ds.features.at(row, 1) =
                float(r * std::sin(phi) + rng.gaussian(0, noise));
            ds.labels[size_t(row)] = int(cls);
        }
    }
    shuffleDataset(rng, ds);
    return ds;
}

Dataset
makeBlobs(Rng &rng, int64_t classes, int64_t dim,
          int64_t samples_per_class, double spread)
{
    const int64_t n = classes * samples_per_class;
    Dataset ds;
    ds.features = Tensor({n, dim});
    ds.labels.resize(size_t(n));
    // Deterministic random unit-ish centers per class.
    std::vector<std::vector<double>> centers;
    centers.resize(size_t(classes));
    for (auto &c : centers) {
        c.resize(size_t(dim));
        for (auto &v : c)
            v = rng.gaussian(0.0, 1.0);
    }
    for (int64_t cls = 0; cls < classes; ++cls) {
        for (int64_t i = 0; i < samples_per_class; ++i) {
            int64_t row = cls * samples_per_class + i;
            for (int64_t j = 0; j < dim; ++j)
                ds.features.at(row, j) =
                    float(centers[size_t(cls)][size_t(j)] +
                          rng.gaussian(0.0, spread));
            ds.labels[size_t(row)] = int(cls);
        }
    }
    shuffleDataset(rng, ds);
    return ds;
}

void
shuffleDataset(Rng &rng, Dataset &ds)
{
    std::vector<int64_t> perm(size_t(ds.size()));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    Tensor feats({ds.size(), ds.featureDim()});
    std::vector<int> labels(size_t(ds.size()));
    for (int64_t i = 0; i < ds.size(); ++i) {
        for (int64_t j = 0; j < ds.featureDim(); ++j)
            feats.at(i, j) = ds.features.at(perm[size_t(i)], j);
        labels[size_t(i)] = ds.labels[size_t(perm[size_t(i)])];
    }
    ds.features = std::move(feats);
    ds.labels = std::move(labels);
}

double
accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    rapid_assert(logits.dim(0) == int64_t(labels.size()),
                 "accuracy: label count mismatch");
    int64_t correct = 0;
    for (int64_t i = 0; i < logits.dim(0); ++i) {
        int best = 0;
        for (int64_t j = 1; j < logits.dim(1); ++j)
            if (logits.at(i, j) > logits.at(i, best))
                best = int(j);
        if (best == labels[size_t(i)])
            ++correct;
    }
    return double(correct) / double(logits.dim(0));
}

} // namespace rapid
