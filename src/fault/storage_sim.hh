/**
 * @file
 * Storage-site fault experiment over the bit-accurate precision
 * formats: quantize a stream of Laplace-distributed operand values
 * (typical of trained DNN weights) into a format's stored encoding,
 * flip each stored bit with the configured probability, resolve the
 * site's parity/ECC protection, and classify every struck word:
 *
 *   detected  -> value restored, retry cost charged
 *   masked    -> escaped detection but the decoded error is below the
 *                benign threshold (an output-LSB-scale perturbation)
 *   SDC       -> escaped detection with a visible value change;
 *                errors beyond the clip range (exponent flips, NaN
 *                encodings) additionally count as catastrophic
 *
 * This quantifies the SDC-headroom question the paper's ultra-low
 * precision story raises: INT4's bounded, uniformly-spaced levels
 * turn every upset into a bounded error, while a floating-point
 * format's exponent bits make rare upsets catastrophically large —
 * protection requirements differ accordingly.
 *
 * Determinism: operand values derive from (data_seed, word index) and
 * fault decisions from the injector's (site, word index) streams, so
 * results are bit-identical at any thread count.
 */

#ifndef RAPID_FAULT_STORAGE_SIM_HH
#define RAPID_FAULT_STORAGE_SIM_HH

#include <cstdint>
#include <string>

#include "common/fault.hh"

namespace rapid {

/** Storable operand formats of the RaPiD datapath. */
enum class StorageFormat
{
    DLFloat16, ///< (1,6,9) training format
    Fp8E4M3,   ///< HFP8 forward format (bias 4)
    Fp8E5M2,   ///< HFP8 backward format
    Int4,      ///< 4-bit fixed point
    Int2,      ///< 2-bit fixed point
};

const char *storageFormatName(StorageFormat fmt);

/** Stored bits per operand word of @p fmt. */
unsigned storageFormatBits(StorageFormat fmt);

/** One storage fault campaign. */
struct StorageExperiment
{
    StorageFormat format = StorageFormat::DLFloat16;
    size_t words = size_t(1) << 14;
    /// Operand values are clipped to [-clip, clip]; the INT scale is
    /// clip / maxLevel (PACT-style symmetric quantization).
    double clip = 4.0;
    uint64_t data_seed = 0x0da7aULL;
    /// Undetected errors with |error| <= benign_fraction * clip are
    /// masked (they vanish under the consumer's output quantization).
    double benign_fraction = 0.05;
};

/** Campaign outcome. */
struct StorageResult
{
    FaultStats stats;
    /// Silent corruptions whose error is non-finite or beyond the
    /// clip range — the catastrophic subset of stats.sdc.
    uint64_t catastrophic = 0;
    double max_abs_error = 0; ///< largest finite silent error
    double sum_abs_error = 0; ///< total finite silent error

    double
    sdcRate() const
    {
        return stats.sampled
                   ? double(stats.sdc) / double(stats.sampled)
                   : 0.0;
    }

    double
    meanAbsError() const
    {
        return stats.sdc ? sum_abs_error / double(stats.sdc) : 0.0;
    }
};

/**
 * Run @p exp under @p injector (StorageWord site). Parallelized over
 * words via the deterministic pool; the reduction is serial in word
 * order, so the result is bit-identical at any thread count.
 */
StorageResult runStorageExperiment(const StorageExperiment &exp,
                                   const FaultInjector &injector);

} // namespace rapid

#endif // RAPID_FAULT_STORAGE_SIM_HH
