#include "fault/storage_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/parallel.hh"
#include "precision/float_format.hh"
#include "precision/int_format.hh"

namespace rapid {

const char *
storageFormatName(StorageFormat fmt)
{
    switch (fmt) {
      case StorageFormat::DLFloat16:
        return "DLFloat16";
      case StorageFormat::Fp8E4M3:
        return "FP8(1,4,3)";
      case StorageFormat::Fp8E5M2:
        return "FP8(1,5,2)";
      case StorageFormat::Int4:
        return "INT4";
      case StorageFormat::Int2:
        return "INT2";
    }
    return "?";
}

unsigned
storageFormatBits(StorageFormat fmt)
{
    switch (fmt) {
      case StorageFormat::DLFloat16:
        return 16;
      case StorageFormat::Fp8E4M3:
      case StorageFormat::Fp8E5M2:
        return 8;
      case StorageFormat::Int4:
        return 4;
      case StorageFormat::Int2:
        return 2;
    }
    return 0;
}

namespace {

/** Codec facade over the float and fixed-point formats. */
struct Codec
{
    const FloatFormat *flt = nullptr;
    const IntFormat *fix = nullptr;
    FloatFormat fp8_fwd = fp8e4m3();
    float scale = 1.0f;
    unsigned bits = 0;

    explicit Codec(StorageFormat fmt, double clip)
    {
        bits = storageFormatBits(fmt);
        switch (fmt) {
          case StorageFormat::DLFloat16:
            flt = &dlfloat16();
            break;
          case StorageFormat::Fp8E4M3:
            flt = &fp8_fwd;
            break;
          case StorageFormat::Fp8E5M2:
            flt = &fp8e5m2();
            break;
          case StorageFormat::Int4:
            fix = &int4();
            break;
          case StorageFormat::Int2:
            fix = &int2();
            break;
        }
        if (fix)
            scale = float(clip / fix->maxLevel());
    }

    uint32_t
    encode(float value) const
    {
        if (flt)
            return flt->encode(value);
        const int level = fix->quantizeLevel(value, scale);
        return uint32_t(level) & ((1u << bits) - 1u);
    }

    float
    decode(uint32_t word) const
    {
        if (flt)
            return flt->decode(word);
        // Sign-extend the stored two's-complement field; corrupted
        // encodings may land on the unused most-negative level, which
        // the datapath would still interpret arithmetically.
        const int level =
            int(int32_t(word << (32u - bits)) >> (32u - bits));
        return fix->dequantize(level, scale);
    }
};

/** Per-word outcome, reduced serially in word order. */
struct WordOutcome
{
    FaultStats stats;
    uint64_t catastrophic = 0;
    double abs_error = 0; ///< finite silent error, else 0
};

} // namespace

StorageResult
runStorageExperiment(const StorageExperiment &exp,
                     const FaultInjector &injector)
{
    RAPID_CHECK_ARG(exp.words > 0, "storage experiment needs words");
    RAPID_CHECK_ARG(std::isfinite(exp.clip) && exp.clip > 0.0,
                    "storage experiment clip must be positive, got ",
                    exp.clip);
    RAPID_CHECK_ARG(exp.benign_fraction >= 0.0 &&
                        exp.benign_fraction <= 1.0,
                    "benign_fraction must be in [0, 1], got ",
                    exp.benign_fraction);

    const Codec codec(exp.format, exp.clip);
    const float clip = float(exp.clip);
    const double benign = exp.benign_fraction * exp.clip;

    const std::vector<WordOutcome> outcomes =
        parallelMap(exp.words, [&](size_t i) {
            WordOutcome out;
            out.stats.sampled = 1;

            // Operand value: Laplace-distributed like trained DNN
            // weights, clipped to the quantization range.
            Rng data(mixSeed(exp.data_seed, i));
            const float value = std::clamp(
                float(data.laplace(1.0)), -clip, clip);
            const uint32_t word = codec.encode(value);
            const float clean = codec.decode(word);

            if (!injector.active(FaultSite::StorageWord))
                return out;
            Rng rng = injector.stream(FaultSite::StorageWord, i);
            unsigned flips = 0;
            const uint32_t bad_word =
                injector.corruptBits(rng, codec.bits, word, flips);
            if (flips == 0)
                return out;
            out.stats.injected = 1;
            const FaultOutcome res = injector.resolveProtection(
                FaultSite::StorageWord, rng, out.stats);
            if (res != FaultOutcome::Silent)
                return out; // restored (corrected or retried)

            const float bad = codec.decode(bad_word);
            const double err = std::abs(double(bad) - double(clean));
            if (err <= benign) {
                ++out.stats.masked;
                return out;
            }
            ++out.stats.sdc;
            if (!std::isfinite(err) || err > exp.clip)
                ++out.catastrophic;
            if (std::isfinite(err))
                out.abs_error = err;
            return out;
        });

    StorageResult result;
    for (const WordOutcome &out : outcomes) {
        result.stats += out.stats;
        result.catastrophic += out.catastrophic;
        result.sum_abs_error += out.abs_error;
        result.max_abs_error =
            std::max(result.max_abs_error, out.abs_error);
    }
    return result;
}

} // namespace rapid
